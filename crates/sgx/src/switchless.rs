//! Switchless enclave transitions: a shared-ring call model in the spirit
//! of HotCalls (Svenningsson et al., "Speeding up enclave transitions for
//! IO-intensive applications").
//!
//! The paper charges every enclave↔host crossing as SGX(U) instructions
//! (EENTER/EEXIT at 10 000 cycles each, §5 fn. 6) and blames those
//! crossings for much of the steady-state overhead: "mainly due to
//! in-enclave I/O and dynamic memory allocation that cause context
//! switches". Switchless calls remove the crossing: the enclave posts the
//! request into an **untrusted shared ring** and a pool of host worker
//! threads, spinning on the ring, services it while the enclave keeps
//! running. What remains is ordinary work — writing the request into the
//! ring and the worker's poll/dispatch — charged as normal instructions.
//!
//! The emulated model, per would-be transition pair:
//!
//! * **Elided** — at least one worker is awake and the ring has a free
//!   slot: charge [`crate::cost::CostModel::switchless_post`] +
//!   [`crate::cost::CostModel::switchless_poll`] normal instructions and
//!   zero SGX instructions.
//! * **Fallback: ring full** — the ring has no free slot; the enclave
//!   takes a real transition (which drains the ring while the host runs).
//!   Under [`WorkerScaling::Adaptive`] the fallback also wakes one more
//!   pool worker (scale-up-on-fallback), paying the wake cost.
//! * **Fallback: workers asleep** — the pool exhausted its spin budget
//!   ([`SwitchlessConfig::worker_spin_ecalls`] consecutive ecalls with no
//!   switchless traffic) and went to sleep; the enclave takes a real
//!   transition and pays [`crate::cost::CostModel::switchless_wake`] to
//!   wake it.
//!
//! ## The idle-spin economy
//!
//! Spinning workers are not free: every awake worker that finds nothing
//! to service burns [`SwitchlessConfig::spin_budget`] spin units per
//! ecall, each charged [`crate::cost::CostModel::switchless_idle_spin`]
//! normal instructions and accumulated in
//! [`TransitionStats::idle_spins`]. More workers drain bursts faster
//! (each extra awake worker retires one ring entry per post interval, so
//! fewer ring-full fallbacks), but every surplus worker is a pure
//! idle-spin tax — an over-provisioned pool can make switchless *lose*
//! against classic transitions, which is exactly the trade-off the
//! HotCalls literature reports. The default `spin_budget` of 0 reproduces
//! the original 1-worker accounting (spin cost unmodelled) so calibrated
//! fixtures are unaffected until a run opts in.
//!
//! Asynchronous exits (AEX on EPC eviction) are **never** elided — they
//! are hardware-initiated, not call-shaped, so no ring can absorb them.
//!
//! Ecalls are amortised instead of elided: a batched ecall
//! ([`crate::platform::Platform::ecall_batch`]) pays one EENTER/EEXIT
//! pair for N queued calls, mirroring the paper's Table 2, where batching
//! 100 packets turns 6 SGX instructions per packet into 204 per batch.

/// How an enclave crosses the enclave↔host boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransitionMode {
    /// Every crossing is a real EENTER/EEXIT pair (the paper's baseline).
    #[default]
    Classic,
    /// Ocall-path crossings go through the shared call ring when possible.
    Switchless,
}

impl TransitionMode {
    /// Stable lowercase name (used in reports and JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            TransitionMode::Classic => "classic",
            TransitionMode::Switchless => "switchless",
        }
    }
}

/// How the awake subset of the worker pool tracks load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkerScaling {
    /// The whole pool of [`SwitchlessConfig::workers`] spins from the
    /// moment switchless mode is entered; idle ecalls park the workers
    /// one by one (spin-then-sleep) and any asleep-fallback wakes the
    /// whole pool again.
    #[default]
    Fixed,
    /// Start with `min` workers spinning; a ring-full fallback wakes one
    /// more (scale-up-on-fallback, paying the wake cost) up to `max`,
    /// and idle ecalls past the spin-ecall budget park one at a time
    /// back down to `min` (scale-down-on-idle).
    Adaptive {
        /// Fewest workers kept spinning under idle load.
        min: usize,
        /// Most workers ever spinning under bursty load.
        max: usize,
    },
}

/// Tuning knobs of the switchless layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchlessConfig {
    /// Request slots in the untrusted shared ring. A burst longer than
    /// this inside one ecall overflows and falls back to a real
    /// transition (which drains the ring).
    pub ring_capacity: usize,
    /// Consecutive ecalls without switchless traffic the pool spins
    /// through before workers start going to sleep. `0` means workers
    /// start parking whenever an ecall posts nothing.
    pub worker_spin_ecalls: u32,
    /// Host worker threads in the pool (≥ 1; 0 is treated as 1). The
    /// default of 1 reproduces the original single-worker model exactly.
    pub workers: usize,
    /// Spin units each awake-but-idle worker burns per ecall, charged at
    /// [`crate::cost::CostModel::switchless_idle_spin`] normal
    /// instructions per unit. `0` (the default) keeps idle spinning free,
    /// i.e. the pre-pool accounting.
    pub spin_budget: u32,
    /// Worker scaling policy (fixed pool vs adaptive `[min, max]`).
    pub scaling: WorkerScaling,
}

impl Default for SwitchlessConfig {
    fn default() -> Self {
        SwitchlessConfig {
            ring_capacity: 64,
            worker_spin_ecalls: 8,
            workers: 1,
            spin_budget: 0,
            scaling: WorkerScaling::Fixed,
        }
    }
}

impl SwitchlessConfig {
    /// Workers awake right after entering switchless mode.
    fn initial_awake(&self) -> usize {
        match self.scaling {
            WorkerScaling::Fixed => self.pool_size(),
            WorkerScaling::Adaptive { min, .. } => min.clamp(1, self.pool_size()),
        }
    }

    /// Workers woken by an asleep-fallback (the whole fixed pool; the
    /// adaptive floor, but at least one).
    fn wake_target(&self) -> usize {
        self.initial_awake()
    }

    /// Fewest awake workers idle parking may leave behind.
    fn sleep_floor(&self) -> usize {
        match self.scaling {
            WorkerScaling::Fixed => 0,
            WorkerScaling::Adaptive { min, .. } => min.min(self.pool_size()),
        }
    }

    /// Most workers ever awake at once.
    fn awake_ceiling(&self) -> usize {
        match self.scaling {
            WorkerScaling::Fixed => self.pool_size(),
            WorkerScaling::Adaptive { max, .. } => max.clamp(1, self.pool_size()),
        }
    }

    /// The pool size with the `0 == 1` degenerate config absorbed.
    fn pool_size(&self) -> usize {
        self.workers.max(1)
    }
}

/// Per-enclave accounting of boundary crossings, in EENTER/EEXIT *pairs*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransitionStats {
    /// Real transition pairs taken (classic crossings and fallbacks).
    pub taken: u64,
    /// Transition pairs elided — serviced through the ring, or amortised
    /// away by ecall batching.
    pub elided: u64,
    /// Switchless posts that had to fall back to a real transition
    /// (ring full or workers asleep). Always a subset of `taken`.
    pub fallbacks: u64,
    /// Spin units burned by awake workers that found nothing to service
    /// (charged at `switchless_idle_spin` normal instructions each) —
    /// the honest cost of keeping the pool hot.
    pub idle_spins: u64,
}

impl TransitionStats {
    /// A zeroed stats record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates another record into this one.
    pub fn merge(&mut self, other: TransitionStats) {
        self.taken += other.taken;
        self.elided += other.elided;
        self.fallbacks += other.fallbacks;
        self.idle_spins += other.idle_spins;
    }

    /// Difference since an earlier snapshot (saturating, like
    /// [`crate::cost::Counters::since`]).
    pub fn since(&self, earlier: TransitionStats) -> TransitionStats {
        TransitionStats {
            taken: self.taken.saturating_sub(earlier.taken),
            elided: self.elided.saturating_sub(earlier.elided),
            fallbacks: self.fallbacks.saturating_sub(earlier.fallbacks),
            idle_spins: self.idle_spins.saturating_sub(earlier.idle_spins),
        }
    }
}

/// Outcome of posting a would-be transition to the switchless layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Post {
    /// Classic mode: take the real transition.
    Classic,
    /// Serviced through the ring; no SGX instructions.
    Elided,
    /// Switchless mode but the request could not be absorbed; take a real
    /// transition. `woke` is true when a worker had to be woken.
    Fallback {
        /// Whether a sleeping worker was woken (charges the wake cost).
        woke: bool,
    },
}

/// Per-enclave switchless state: mode, ring occupancy, pool liveness.
#[derive(Debug, Clone)]
pub struct SwitchlessState {
    /// Current transition mode.
    pub mode: TransitionMode,
    /// Ring/worker tuning.
    pub config: SwitchlessConfig,
    /// Crossing statistics since enclave creation.
    pub stats: TransitionStats,
    /// Workers currently spinning on the ring (the rest of the pool is
    /// parked on the wake futex).
    awake: usize,
    idle_ecalls: u32,
    ring_used: usize,
    posted_this_ecall: bool,
}

impl Default for SwitchlessState {
    fn default() -> Self {
        Self::new()
    }
}

impl SwitchlessState {
    /// Classic-mode state (no ring, no workers).
    pub fn new() -> Self {
        SwitchlessState {
            mode: TransitionMode::Classic,
            config: SwitchlessConfig::default(),
            stats: TransitionStats::new(),
            awake: 0,
            idle_ecalls: 0,
            ring_used: 0,
            posted_this_ecall: false,
        }
    }

    /// Switches modes. Entering switchless starts the policy's initial
    /// worker count spinning; returning to classic parks the pool. All
    /// per-ecall bookkeeping — including the posted-this-ecall flag, so a
    /// mid-ecall mode round-trip cannot carry stale spin-budget credit —
    /// is reset.
    pub fn set_mode(&mut self, mode: TransitionMode) {
        self.mode = mode;
        self.awake = if mode == TransitionMode::Switchless {
            self.config.initial_awake()
        } else {
            0
        };
        self.idle_ecalls = 0;
        self.ring_used = 0;
        self.posted_this_ecall = false;
    }

    /// Whether any host worker is currently spinning on the ring.
    pub fn worker_awake(&self) -> bool {
        self.awake > 0
    }

    /// Number of host workers currently spinning on the ring.
    pub fn workers_awake(&self) -> usize {
        self.awake
    }

    /// Called at every EENTER: the host ran between ecalls, so the pool
    /// has drained the ring.
    pub(crate) fn on_ecall_start(&mut self) {
        self.ring_used = 0;
        self.posted_this_ecall = false;
    }

    /// Called at every EEXIT. Ecalls that post nothing burn the pool's
    /// spin-ecall budget; past it, workers park one per idle ecall down
    /// to the policy floor. Returns the spin units burned by awake
    /// workers that had nothing to service this ecall — an idle ecall
    /// idles the whole awake set, a posting ecall idles everyone beyond
    /// the one worker the traffic keeps busy. The caller charges them at
    /// [`crate::cost::CostModel::switchless_idle_spin`] each.
    pub(crate) fn on_ecall_end(&mut self) -> u64 {
        if self.mode != TransitionMode::Switchless {
            return 0;
        }
        let idle_workers = if self.posted_this_ecall {
            self.idle_ecalls = 0;
            self.awake.saturating_sub(1)
        } else {
            self.idle_ecalls = self.idle_ecalls.saturating_add(1);
            let idle = self.awake;
            if self.idle_ecalls > self.config.worker_spin_ecalls
                && self.awake > self.config.sleep_floor()
            {
                self.awake -= 1;
            }
            idle
        };
        let spins = (idle_workers as u64).saturating_mul(u64::from(self.config.spin_budget));
        self.stats.idle_spins += spins;
        spins
    }

    /// Tries to absorb `pairs` would-be transition pairs into the ring.
    pub(crate) fn post(&mut self, pairs: u64) -> Post {
        if self.mode != TransitionMode::Switchless {
            return Post::Classic;
        }
        self.posted_this_ecall = true;
        self.idle_ecalls = 0;
        if self.awake == 0 {
            // Wake the pool via a real transition; the ring is empty
            // once the workers resume spinning.
            self.awake = self.config.wake_target();
            self.ring_used = 0;
            return Post::Fallback { woke: true };
        }
        // Extra awake workers drain the ring concurrently with the
        // enclave: each worker beyond the first retires one entry per
        // post interval (with one worker this is a no-op, preserving the
        // original single-worker occupancy model exactly).
        self.ring_used = self.ring_used.saturating_sub(self.awake - 1);
        let Ok(pairs) = usize::try_from(pairs) else {
            // A burst too large to even index overflows the ring by
            // definition: fall back rather than truncate the count.
            self.ring_used = 0;
            return Post::Fallback { woke: false };
        };
        if self.ring_used.saturating_add(pairs) > self.config.ring_capacity {
            // Overflow: the real transition gives the pool time to
            // drain everything.
            self.ring_used = 0;
            if let WorkerScaling::Adaptive { .. } = self.config.scaling {
                if self.awake < self.config.awake_ceiling() {
                    // Scale-up-on-fallback: the overflow is evidence the
                    // awake set is too small — wake one more worker,
                    // paying the wake cost.
                    self.awake += 1;
                    return Post::Fallback { woke: true };
                }
            }
            return Post::Fallback { woke: false };
        }
        self.ring_used += pairs;
        Post::Elided
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn switchless(ring: usize, spin: u32) -> SwitchlessState {
        switchless_pool(ring, spin, 1)
    }

    fn switchless_pool(ring: usize, spin: u32, workers: usize) -> SwitchlessState {
        let mut s = SwitchlessState::new();
        s.config = SwitchlessConfig {
            ring_capacity: ring,
            worker_spin_ecalls: spin,
            workers,
            ..SwitchlessConfig::default()
        };
        s.set_mode(TransitionMode::Switchless);
        s
    }

    /// Compile-time regression: the switchless ring/worker state is plain
    /// owned data and must stay `Send` (it rides inside `Enclave`, which
    /// moves to a load shard's thread together with its platform).
    #[test]
    fn switchless_state_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<SwitchlessState>();
        assert_send::<TransitionStats>();
        assert_send::<WorkerScaling>();
    }

    #[test]
    fn classic_mode_never_elides() {
        let mut s = SwitchlessState::new();
        assert_eq!(s.post(1), Post::Classic);
        assert_eq!(s.post(10), Post::Classic);
    }

    #[test]
    fn awake_worker_elides_until_ring_full() {
        let mut s = switchless(3, 8);
        s.on_ecall_start();
        assert_eq!(s.post(1), Post::Elided);
        assert_eq!(s.post(1), Post::Elided);
        assert_eq!(s.post(1), Post::Elided);
        // Fourth post overflows the 3-slot ring: fallback drains it.
        assert_eq!(s.post(1), Post::Fallback { woke: false });
        // Drained: elision resumes.
        assert_eq!(s.post(1), Post::Elided);
    }

    #[test]
    fn ring_drains_between_ecalls() {
        let mut s = switchless(2, 8);
        s.on_ecall_start();
        assert_eq!(s.post(2), Post::Elided);
        s.on_ecall_end();
        s.on_ecall_start();
        assert_eq!(s.post(2), Post::Elided, "fresh ecall sees an empty ring");
    }

    #[test]
    fn idle_worker_sleeps_then_fallback_wakes_it() {
        let mut s = switchless(8, 1);
        // Two consecutive ecalls without switchless traffic: budget is 1,
        // so the second idle ecall puts the worker to sleep.
        for _ in 0..2 {
            s.on_ecall_start();
            s.on_ecall_end();
        }
        assert!(!s.worker_awake());
        s.on_ecall_start();
        assert_eq!(s.post(1), Post::Fallback { woke: true });
        assert!(s.worker_awake());
        assert_eq!(s.post(1), Post::Elided, "worker spins again after wake");
    }

    #[test]
    fn posting_keeps_worker_awake() {
        let mut s = switchless(8, 0);
        for _ in 0..5 {
            s.on_ecall_start();
            assert_eq!(s.post(1), Post::Elided);
            s.on_ecall_end();
            assert!(s.worker_awake(), "active traffic resets the spin budget");
        }
    }

    /// Regression (truncating-cast bug): `post` used to do `pairs as
    /// usize`, so on a 32-bit target a > 4 Gi-pair burst wrapped and
    /// could be "absorbed" by a 64-slot ring. Pair counts beyond what the
    /// ring could ever hold must fall back, on every target width.
    #[test]
    fn oversized_pair_count_falls_back_instead_of_truncating() {
        let mut s = switchless(64, 8);
        s.on_ecall_start();
        assert_eq!(s.post(u64::MAX), Post::Fallback { woke: false });
        assert_eq!(
            s.post((u32::MAX as u64) + 2),
            Post::Fallback { woke: false }
        );
        assert_eq!(s.ring_used, 0, "an overflowing burst never occupies slots");
        assert_eq!(s.post(1), Post::Elided, "ring still usable afterwards");
    }

    /// Regression (stale spin-budget credit): a mode round-trip mid-ecall
    /// used to leave `posted_this_ecall` set, so the first ecall after
    /// re-entering switchless mode was scored as active traffic even if
    /// it posted nothing.
    #[test]
    fn mode_round_trip_clears_posted_flag() {
        let mut s = switchless(8, 0);
        s.on_ecall_start();
        assert_eq!(s.post(1), Post::Elided);
        // Mid-ecall mode round-trip: the stale flag must not survive.
        s.set_mode(TransitionMode::Classic);
        s.set_mode(TransitionMode::Switchless);
        s.on_ecall_end();
        assert!(
            !s.worker_awake(),
            "an idle ecall after the round-trip must burn the spin budget \
             (budget 0: the worker parks) instead of riding stale credit"
        );
    }

    #[test]
    fn fixed_pool_starts_full_and_parks_one_per_idle_ecall() {
        let mut s = switchless_pool(8, 1, 4);
        assert_eq!(s.workers_awake(), 4);
        // Spin-ecall budget 1: the first idle ecall is tolerated, every
        // idle ecall past it parks one worker.
        for expected in [4usize, 4, 3, 2, 1] {
            assert_eq!(s.workers_awake(), expected);
            s.on_ecall_start();
            s.on_ecall_end();
        }
        assert!(!s.worker_awake());
        // The asleep-fallback wakes the whole fixed pool.
        s.on_ecall_start();
        assert_eq!(s.post(1), Post::Fallback { woke: true });
        assert_eq!(s.workers_awake(), 4);
    }

    #[test]
    fn extra_workers_drain_the_ring_mid_ecall() {
        // 2-slot ring: a 1-worker pool overflows on the third 1-pair
        // post, a 3-worker pool retires 2 entries per post interval and
        // never overflows.
        let mut one = switchless_pool(2, 8, 1);
        one.on_ecall_start();
        assert_eq!(one.post(1), Post::Elided);
        assert_eq!(one.post(1), Post::Elided);
        assert_eq!(one.post(1), Post::Fallback { woke: false });

        let mut three = switchless_pool(2, 8, 3);
        three.on_ecall_start();
        for _ in 0..16 {
            assert_eq!(three.post(1), Post::Elided);
        }
    }

    #[test]
    fn adaptive_pool_scales_up_on_fallback_and_down_on_idle() {
        let mut s = switchless_pool(1, 0, 4);
        s.config.scaling = WorkerScaling::Adaptive { min: 1, max: 3 };
        s.set_mode(TransitionMode::Switchless);
        assert_eq!(s.workers_awake(), 1, "adaptive pool starts at min");

        // Overflow the 1-slot ring: each full-ring fallback wakes one
        // more worker (woke: true charges the wake cost) up to max.
        s.on_ecall_start();
        assert_eq!(s.post(1), Post::Elided);
        assert_eq!(s.post(1), Post::Fallback { woke: true });
        assert_eq!(s.workers_awake(), 2);
        assert_eq!(s.post(2), Post::Fallback { woke: true });
        assert_eq!(s.workers_awake(), 3);
        assert_eq!(s.post(4), Post::Fallback { woke: false }, "at max: no wake");
        assert_eq!(s.workers_awake(), 3);
        s.on_ecall_end();

        // Idle ecalls (spin-ecall budget 0) park one worker each, down
        // to min — never below.
        for expected in [3usize, 2, 1, 1, 1] {
            assert_eq!(s.workers_awake(), expected);
            s.on_ecall_start();
            s.on_ecall_end();
        }
    }

    #[test]
    fn idle_spins_accrue_per_awake_worker_and_spin_budget() {
        let mut s = switchless_pool(8, 2, 3);
        s.config.spin_budget = 5;
        s.set_mode(TransitionMode::Switchless);

        // Idle ecall: all 3 awake workers burn their 5-unit budget.
        s.on_ecall_start();
        assert_eq!(s.on_ecall_end(), 15);
        // Posting ecall: one worker is busy, the other 2 idle-spin.
        s.on_ecall_start();
        assert_eq!(s.post(1), Post::Elided);
        assert_eq!(s.on_ecall_end(), 10);
        assert_eq!(s.stats.idle_spins, 25, "stats accumulate burned spins");

        // The 1-worker default with spin budget 0 burns nothing — the
        // pre-pool accounting.
        let mut legacy = switchless(8, 2);
        legacy.on_ecall_start();
        assert_eq!(legacy.on_ecall_end(), 0);
        legacy.on_ecall_start();
        assert_eq!(legacy.post(1), Post::Elided);
        assert_eq!(legacy.on_ecall_end(), 0);
        assert_eq!(legacy.stats.idle_spins, 0);
    }

    #[test]
    fn stats_since_is_saturating() {
        let a = TransitionStats {
            taken: 1,
            elided: 2,
            fallbacks: 0,
            idle_spins: 4,
        };
        let b = TransitionStats {
            taken: 5,
            elided: 1,
            fallbacks: 3,
            idle_spins: 1,
        };
        let d = a.since(b);
        assert_eq!(d.taken, 0);
        assert_eq!(d.elided, 1);
        assert_eq!(d.fallbacks, 0);
        assert_eq!(d.idle_spins, 3);
    }

    #[test]
    fn mode_names_are_stable() {
        assert_eq!(TransitionMode::Classic.as_str(), "classic");
        assert_eq!(TransitionMode::Switchless.as_str(), "switchless");
    }

    /// The pre-pool single-worker implementation, kept verbatim as the
    /// behavioural oracle: the N=1 configuration of the refactored state
    /// machine must be step-for-step identical to it (golden fixtures pin
    /// the reports; this pins `Post` outcomes and `TransitionStats` at
    /// the unit level).
    struct LegacySwitchless {
        ring_capacity: usize,
        worker_spin_ecalls: u32,
        worker_awake: bool,
        idle_ecalls: u32,
        ring_used: usize,
        posted_this_ecall: bool,
    }

    impl LegacySwitchless {
        fn new(ring: usize, spin: u32) -> Self {
            LegacySwitchless {
                ring_capacity: ring,
                worker_spin_ecalls: spin,
                worker_awake: true,
                idle_ecalls: 0,
                ring_used: 0,
                posted_this_ecall: false,
            }
        }

        fn on_ecall_start(&mut self) {
            self.ring_used = 0;
            self.posted_this_ecall = false;
        }

        fn on_ecall_end(&mut self) {
            if self.posted_this_ecall {
                self.idle_ecalls = 0;
            } else {
                self.idle_ecalls = self.idle_ecalls.saturating_add(1);
                if self.idle_ecalls > self.worker_spin_ecalls {
                    self.worker_awake = false;
                }
            }
        }

        fn post(&mut self, pairs: u64) -> Post {
            self.posted_this_ecall = true;
            self.idle_ecalls = 0;
            if !self.worker_awake {
                self.worker_awake = true;
                self.ring_used = 0;
                return Post::Fallback { woke: true };
            }
            let pairs = pairs as usize;
            if self.ring_used + pairs > self.ring_capacity {
                self.ring_used = 0;
                return Post::Fallback { woke: false };
            }
            self.ring_used += pairs;
            Post::Elided
        }
    }

    /// Sequential analogue of the `teenet-analyze` ring model checker:
    /// enumerate every ecall sequence over {post one pair, overflow
    /// post, idle ecall} for pools of 1, 2 and 4 workers and check the
    /// same invariants on the real implementation — outcome conservation
    /// (every post is elided or falls back), posts always leaving at
    /// least one worker spinning, occupancy within the ring capacity,
    /// and the awake set within the pool. The 1-worker sweep additionally
    /// locks every step to the pre-refactor implementation above.
    #[test]
    fn enumerated_ecall_sequences_conserve_outcomes() {
        const OPS: u32 = 3;
        const DEPTH: u32 = 7;
        for workers in [1usize, 2, 4] {
            for (ring, spin) in [(1usize, 0u32), (2, 1), (3, 2)] {
                for encoded in 0..OPS.pow(DEPTH) {
                    let mut seq = encoded;
                    let mut s = switchless_pool(ring, spin, workers);
                    let mut legacy = LegacySwitchless::new(ring, spin);
                    let (mut posts, mut elided, mut fallbacks) = (0u64, 0u64, 0u64);
                    for _ in 0..DEPTH {
                        let op = seq % OPS;
                        seq /= OPS;
                        s.on_ecall_start();
                        legacy.on_ecall_start();
                        if op < 2 {
                            let pairs = if op == 0 { 1 } else { ring as u64 + 1 };
                            let awake_before = s.worker_awake();
                            posts += 1;
                            let outcome = s.post(pairs);
                            match outcome {
                                Post::Elided => elided += 1,
                                Post::Fallback { woke } => {
                                    fallbacks += 1;
                                    if workers == 1 {
                                        assert_eq!(
                                            woke, !awake_before,
                                            "1-worker woke flag must reflect the worker state"
                                        );
                                    }
                                }
                                Post::Classic => {
                                    panic!("switchless mode never returns Classic")
                                }
                            }
                            if workers == 1 {
                                assert_eq!(
                                    outcome,
                                    legacy.post(pairs),
                                    "N=1 must match the pre-refactor implementation \
                                     (seq {encoded}, ring {ring}, spin {spin})"
                                );
                            }
                            assert!(s.worker_awake(), "a post always leaves a worker spinning");
                        }
                        s.on_ecall_end();
                        legacy.on_ecall_end();
                        if workers == 1 {
                            assert_eq!(
                                s.worker_awake(),
                                legacy.worker_awake,
                                "N=1 sleep/wake must match the pre-refactor implementation"
                            );
                        }
                        assert!(
                            s.ring_used <= s.config.ring_capacity,
                            "ring occupancy must stay within capacity"
                        );
                        assert!(
                            s.workers_awake() <= workers,
                            "awake set must stay within the pool"
                        );
                    }
                    assert_eq!(
                        elided + fallbacks,
                        posts,
                        "every post is elided or falls back \
                         (seq {encoded}, ring {ring}, spin {spin}, workers {workers})"
                    );
                }
            }
        }
    }
}
