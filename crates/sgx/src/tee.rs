//! The multi-backend TEE abstraction.
//!
//! The paper models network applications on SGX enclaves, but the same
//! workloads run on VM-level TEEs (TDX, SEV-SNP) with a different *cost
//! shape*: no world switch per guest call, VM exits on I/O-shaped
//! crossings, page acceptance instead of EPC paging, and a security
//! processor signing attestation reports instead of an EPID quoting
//! enclave. [`TeePlatform`] captures the surface every workload actually
//! uses — deploy, destroy, ecall (plus batch), transition-mode and
//! switchless configuration, attestation evidence, counter and transition
//! accounting — so a service deploys against `dyn TeePlatform` and
//! calibrates identically under either backend.
//!
//! The SGX [`Platform`] is the first implementor, byte-for-byte unchanged
//! (the golden loadgen fixtures are the proof); the
//! [`crate::vmtee::VmTeePlatform`] is the second, priced by
//! [`CostModel::vmtee`].
//!
//! [`Evidence`] is the backend-portable attestation artifact: an EPID
//! quote on SGX, a PSP-signed report plus host-fetched endorsement chain
//! on a VM TEE. The wire encoding keeps the EPID form identical to
//! [`Quote::to_bytes`] and distinguishes the VM-TEE form by a sentinel in
//! the group-id field, so pre-existing SGX byte streams parse unchanged.

use teenet_crypto::schnorr::{SigningKey, VerifyingKey};

use crate::cost::{CostModel, Counters};
use crate::enclave::{EnclaveId, EnclaveProgram};
use crate::error::Result;
use crate::measurement::Measurement;
use crate::ocall::{HostCalls, NullHost};
use crate::platform::Platform;
use crate::quote::{EpidGroup, Quote};
use crate::report::{Report, ReportBody, TargetInfo};
use crate::switchless::{SwitchlessConfig, TransitionMode, TransitionStats};
use crate::vmtee::{VmEvidence, VmTeePlatform};

/// Which TEE backend a platform (and everything calibrated on it) uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum TeeBackend {
    /// Enclave TEE: the paper's SGX model (EENTER/EEXIT per call, EPC
    /// paging, EPID quoting enclave).
    #[default]
    Sgx,
    /// VM TEE: a TDX/SEV-SNP-style model (no world switch per guest
    /// call, VM exits on I/O crossings, page acceptance, PSP-signed
    /// reports with an endorsement chain).
    VmTee,
}

impl TeeBackend {
    /// Stable name, as accepted by `loadgen --backend` and emitted in
    /// reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            TeeBackend::Sgx => "sgx",
            TeeBackend::VmTee => "vmtee",
        }
    }

    /// Parses a backend name (the inverse of [`TeeBackend::as_str`]).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "sgx" => Some(TeeBackend::Sgx),
            "vmtee" => Some(TeeBackend::VmTee),
            _ => None,
        }
    }

    /// The cost profile this backend prices crossings and attestation
    /// with.
    pub fn cost_model(&self) -> CostModel {
        match self {
            TeeBackend::Sgx => CostModel::paper(),
            TeeBackend::VmTee => CostModel::vmtee(),
        }
    }
}

impl core::fmt::Display for TeeBackend {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The group-id value that marks a serialised [`Evidence`] as VM-TEE
/// evidence rather than an EPID quote. EPID group ids are small
/// provisioning-service counters in practice; `u64::MAX` is reserved.
pub const VMTEE_EVIDENCE_SENTINEL: u64 = u64::MAX;

/// Backend-portable attestation evidence: what the target platform hands
/// a challenger in message 3 of the paper's Figure 1 flow.
#[derive(Debug, Clone)]
pub enum Evidence {
    /// An EPID-style QUOTE from the SGX quoting enclave.
    Epid(Quote),
    /// A PSP-signed attestation report plus its endorsement chain
    /// (SEV-SNP style).
    VmTee(VmEvidence),
}

impl Evidence {
    /// Which backend produced this evidence.
    pub fn backend(&self) -> TeeBackend {
        match self {
            Evidence::Epid(_) => TeeBackend::Sgx,
            Evidence::VmTee(_) => TeeBackend::VmTee,
        }
    }

    /// The attested report body (identity + user data), whichever the
    /// backend.
    pub fn body(&self) -> &ReportBody {
        match self {
            Evidence::Epid(q) => &q.body,
            Evidence::VmTee(e) => &e.body,
        }
    }

    /// Verifies the evidence against the attestation root (the EPID group
    /// public key, doubling as the VM-TEE vendor root), charging the
    /// verification cost to `counters`.
    ///
    /// EPID evidence costs one signature verification; VM-TEE evidence
    /// costs two (the endorsement link, then the report signature).
    pub fn verify(
        &self,
        root: &VerifyingKey,
        counters: &mut Counters,
        model: &CostModel,
    ) -> Result<()> {
        match self {
            Evidence::Epid(q) => q.verify(root, counters, model),
            Evidence::VmTee(e) => e.verify(root, counters, model),
        }
    }

    /// Canonical wire encoding. EPID evidence encodes exactly as
    /// [`Quote::to_bytes`]; VM-TEE evidence carries
    /// [`VMTEE_EVIDENCE_SENTINEL`] in the group-id position.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            Evidence::Epid(q) => q.to_bytes(),
            Evidence::VmTee(e) => e.to_bytes(),
        }
    }

    /// Parses the encoding of [`Evidence::to_bytes`], dispatching on the
    /// group-id sentinel.
    pub fn from_bytes(buf: &[u8]) -> Result<Self> {
        let gid = buf
            .get(ReportBody::WIRE_LEN..ReportBody::WIRE_LEN + 8)
            .map(|g| {
                let mut b = [0u8; 8];
                b.copy_from_slice(g);
                u64::from_le_bytes(b)
            });
        match gid {
            Some(VMTEE_EVIDENCE_SENTINEL) => Ok(Evidence::VmTee(VmEvidence::from_bytes(buf)?)),
            _ => Ok(Evidence::Epid(Quote::from_bytes(buf)?)),
        }
    }
}

/// One TEE-capable machine, whatever the backend.
///
/// Object-safe and `Send`: services hold a `Box<dyn TeePlatform>` and one
/// independent platform instance can live per load-generation shard.
/// Method semantics match the SGX [`Platform`]'s inherent methods of the
/// same (or corresponding) names; [`TeePlatform::evidence`] generalises
/// `Platform::quote`, [`TeePlatform::attestation_target_info`] generalises
/// `Platform::quoting_target_info`, and [`TeePlatform::attestor_counters`]
/// generalises `Platform::quoting_counters` (the quoting enclave on SGX,
/// the security processor on a VM TEE).
pub trait TeePlatform: Send {
    /// Which backend this platform models.
    fn backend(&self) -> TeeBackend;

    /// Human-readable platform name (for reports and debugging).
    fn platform_name(&self) -> &str;

    /// The cost model all accounting on this platform uses.
    fn model(&self) -> &CostModel;

    /// Signs `program` with `author` and loads it.
    fn create_signed(
        &mut self,
        program: Box<dyn EnclaveProgram>,
        author: &SigningKey,
        isv_svn: u16,
    ) -> Result<EnclaveId>;

    /// Tears an enclave down, releasing its protected memory.
    fn destroy_enclave(&mut self, id: EnclaveId) -> Result<()>;

    /// Performs an ecall into enclave `id` with host services available.
    fn ecall(
        &mut self,
        id: EnclaveId,
        fn_id: u64,
        input: &[u8],
        host: &mut dyn HostCalls,
    ) -> Result<Vec<u8>>;

    /// Performs a batched ecall (one transition pair for the batch).
    fn ecall_batch(
        &mut self,
        id: EnclaveId,
        calls: &[(u64, Vec<u8>)],
        host: &mut dyn HostCalls,
    ) -> Result<Vec<Vec<u8>>>;

    /// Sets the transition mode of one enclave.
    fn set_transition_mode(&mut self, id: EnclaveId, mode: TransitionMode) -> Result<()>;

    /// Tunes the switchless ring/worker of one enclave.
    fn configure_switchless(&mut self, id: EnclaveId, config: SwitchlessConfig) -> Result<()>;

    /// Crossing statistics of one enclave.
    fn transition_stats_of(&self, id: EnclaveId) -> Result<TransitionStats>;

    /// Sum of all enclaves' crossing statistics.
    fn total_transition_stats(&self) -> TransitionStats;

    /// Counters of one enclave.
    fn counters_of(&self, id: EnclaveId) -> Result<Counters>;

    /// Counters of the attestation component (quoting enclave on SGX,
    /// security processor on a VM TEE).
    fn attestor_counters(&self) -> Counters;

    /// Resets the counters of one enclave.
    fn reset_counters(&mut self, id: EnclaveId) -> Result<()>;

    /// Sum of all enclave counters plus the attestation component.
    fn total_counters(&self) -> Counters;

    /// The identity (measurement) of a loaded enclave.
    fn measurement_of(&self, id: EnclaveId) -> Result<Measurement>;

    /// The TargetInfo enclaves use to address attestation reports to this
    /// platform's attestation component.
    fn attestation_target_info(&self) -> TargetInfo;

    /// Turns a report (targeted at this platform's attestation component)
    /// into verifiable [`Evidence`].
    fn evidence(&mut self, report: &Report) -> Result<Evidence>;

    /// Free protected-memory pages remaining.
    fn epc_free_pages(&self) -> usize;

    /// Ecall without host services (pure computation inside the enclave).
    fn ecall_nohost(&mut self, id: EnclaveId, fn_id: u64, input: &[u8]) -> Result<Vec<u8>> {
        let mut host = NullHost;
        self.ecall(id, fn_id, input, &mut host)
    }

    /// Batched ecall without host services.
    fn ecall_batch_nohost(
        &mut self,
        id: EnclaveId,
        calls: &[(u64, Vec<u8>)],
    ) -> Result<Vec<Vec<u8>>> {
        let mut host = NullHost;
        self.ecall_batch(id, calls, &mut host)
    }
}

impl TeePlatform for Platform {
    fn backend(&self) -> TeeBackend {
        TeeBackend::Sgx
    }

    fn platform_name(&self) -> &str {
        &self.name
    }

    fn model(&self) -> &CostModel {
        &self.model
    }

    fn create_signed(
        &mut self,
        program: Box<dyn EnclaveProgram>,
        author: &SigningKey,
        isv_svn: u16,
    ) -> Result<EnclaveId> {
        Platform::create_signed(self, program, author, isv_svn)
    }

    fn destroy_enclave(&mut self, id: EnclaveId) -> Result<()> {
        Platform::destroy_enclave(self, id)
    }

    fn ecall(
        &mut self,
        id: EnclaveId,
        fn_id: u64,
        input: &[u8],
        host: &mut dyn HostCalls,
    ) -> Result<Vec<u8>> {
        Platform::ecall(self, id, fn_id, input, host)
    }

    fn ecall_batch(
        &mut self,
        id: EnclaveId,
        calls: &[(u64, Vec<u8>)],
        host: &mut dyn HostCalls,
    ) -> Result<Vec<Vec<u8>>> {
        Platform::ecall_batch(self, id, calls, host)
    }

    fn set_transition_mode(&mut self, id: EnclaveId, mode: TransitionMode) -> Result<()> {
        Platform::set_transition_mode(self, id, mode)
    }

    fn configure_switchless(&mut self, id: EnclaveId, config: SwitchlessConfig) -> Result<()> {
        Platform::configure_switchless(self, id, config)
    }

    fn transition_stats_of(&self, id: EnclaveId) -> Result<TransitionStats> {
        Platform::transition_stats_of(self, id)
    }

    fn total_transition_stats(&self) -> TransitionStats {
        Platform::total_transition_stats(self)
    }

    fn counters_of(&self, id: EnclaveId) -> Result<Counters> {
        Platform::counters_of(self, id)
    }

    fn attestor_counters(&self) -> Counters {
        self.quoting_counters()
    }

    fn reset_counters(&mut self, id: EnclaveId) -> Result<()> {
        Platform::reset_counters(self, id)
    }

    fn total_counters(&self) -> Counters {
        Platform::total_counters(self)
    }

    fn measurement_of(&self, id: EnclaveId) -> Result<Measurement> {
        Platform::measurement_of(self, id)
    }

    fn attestation_target_info(&self) -> TargetInfo {
        self.quoting_target_info()
    }

    fn evidence(&mut self, report: &Report) -> Result<Evidence> {
        Ok(Evidence::Epid(self.quote(report)?))
    }

    fn epc_free_pages(&self) -> usize {
        Platform::epc_free_pages(self)
    }
}

/// The backend factory: builds a platform named `name`, provisioned into
/// `group` (the EPID group on SGX; its key doubles as the vendor root on
/// a VM TEE), seeded with `seed`.
///
/// All deployments — services, tests, examples — go through here rather
/// than constructing `Platform` directly, so a backend switch is one
/// argument.
pub fn deploy_platform(
    backend: TeeBackend,
    name: &str,
    group: &EpidGroup,
    seed: u64,
) -> Result<Box<dyn TeePlatform>> {
    match backend {
        TeeBackend::Sgx => Ok(Box::new(Platform::new(name, group, seed))),
        TeeBackend::VmTee => Ok(Box::new(VmTeePlatform::new(name, group, seed)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teenet_crypto::schnorr::SchnorrGroup;
    use teenet_crypto::SecureRng;

    #[test]
    fn backend_names_round_trip() {
        for b in [TeeBackend::Sgx, TeeBackend::VmTee] {
            assert_eq!(TeeBackend::parse(b.as_str()), Some(b));
            assert_eq!(format!("{b}"), b.as_str());
        }
        assert_eq!(TeeBackend::parse("tdx"), None);
        assert_eq!(TeeBackend::default(), TeeBackend::Sgx);
        assert_eq!(TeeBackend::Sgx.cost_model(), CostModel::paper());
        assert_eq!(TeeBackend::VmTee.cost_model(), CostModel::vmtee());
    }

    #[test]
    fn epid_evidence_wire_is_exactly_the_quote_wire() {
        let mut rng = SecureRng::seed_from_u64(3);
        let key = SigningKey::generate(&SchnorrGroup::small(), &mut rng).unwrap();
        let sig = key.sign(b"anything", &mut rng).unwrap();
        let q = Quote {
            body: ReportBody {
                mrenclave: Measurement([1u8; 32]),
                mrsigner: Measurement([2u8; 32]),
                isv_svn: 7,
                report_data: [9u8; 64],
            },
            group_id: 42,
            signature: sig,
        };
        let ev = Evidence::Epid(q.clone());
        assert_eq!(ev.to_bytes(), q.to_bytes(), "SGX byte streams unchanged");
        match Evidence::from_bytes(&q.to_bytes()).unwrap() {
            Evidence::Epid(parsed) => assert_eq!(parsed.body, q.body),
            Evidence::VmTee(_) => panic!("EPID bytes must parse as EPID"),
        }
    }

    #[test]
    fn sgx_platform_implements_the_trait() {
        let mut rng = SecureRng::seed_from_u64(5);
        let group = EpidGroup::new(1, &mut rng).unwrap();
        let boxed = deploy_platform(TeeBackend::Sgx, "trait-test", &group, 7).unwrap();
        assert_eq!(boxed.backend(), TeeBackend::Sgx);
        assert_eq!(boxed.platform_name(), "trait-test");
        assert_eq!(boxed.model(), &CostModel::paper());
        assert_eq!(
            boxed.attestation_target_info().mrenclave,
            crate::quote::quoting_enclave_measurement()
        );
        assert_eq!(boxed.attestor_counters(), Counters::new());
    }

    #[test]
    fn evidence_rejects_garbage() {
        assert!(Evidence::from_bytes(&[]).is_err());
        assert!(Evidence::from_bytes(&[0u8; 10]).is_err());
        let mut sentinel_short = vec![0u8; ReportBody::WIRE_LEN];
        sentinel_short.extend_from_slice(&VMTEE_EVIDENCE_SENTINEL.to_le_bytes());
        assert!(Evidence::from_bytes(&sentinel_short).is_err());
    }
}
