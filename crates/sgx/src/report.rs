//! EREPORT and the REPORT structure (local/intra attestation).
//!
//! "Using the EREPORT instruction, [enclave A] creates a REPORT data
//! structure that contains the hash value of the two enclaves (enclave
//! identities), public key of the signer [...], some user data, and a
//! message authentication code (MAC) over the data structure. The MAC is
//! produced with a report key, only known to the target enclave and the
//! EREPORT instruction on the same machine." (paper §2.2)

use teenet_crypto::hmac::{hmac_sha256, hmac_verify};

use crate::error::{Result, SgxError};
use crate::keys::{derive_key, KeyRequest};
use crate::measurement::Measurement;

/// Size of the user data field carried in a REPORT (real SGX: 64 bytes).
pub const REPORT_DATA_LEN: usize = 64;

/// Identifies the enclave a REPORT is destined for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetInfo {
    /// MRENCLAVE of the verifying enclave.
    pub mrenclave: Measurement,
}

/// The REPORT body (the MACed portion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportBody {
    /// Identity of the reporting enclave.
    pub mrenclave: Measurement,
    /// Identity of the reporting enclave's author.
    pub mrsigner: Measurement,
    /// Security version of the reporting enclave.
    pub isv_svn: u16,
    /// Caller-chosen user data (e.g. a DH public key digest).
    pub report_data: [u8; REPORT_DATA_LEN],
}

impl ReportBody {
    /// Canonical byte encoding used for MACs and quote signatures.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + 32 + 2 + REPORT_DATA_LEN);
        out.extend_from_slice(&self.mrenclave.0);
        out.extend_from_slice(&self.mrsigner.0);
        out.extend_from_slice(&self.isv_svn.to_le_bytes());
        out.extend_from_slice(&self.report_data);
        out
    }
}

/// A REPORT: body plus the MAC keyed to the target enclave's report key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// The authenticated body.
    pub body: ReportBody,
    /// Which enclave the report targets (whose report key MACs it).
    pub target: TargetInfo,
    /// HMAC-SHA256 over the body under the target's report key.
    pub mac: [u8; 32],
}

/// EREPORT: creates a REPORT from `body` addressed to `target`, MACed with
/// the target's report key derived from `device_key`.
///
/// Only callable by the "hardware" (the platform) on behalf of an enclave;
/// the MAC key never leaves this module except through EGETKEY.
pub fn ereport(device_key: &[u8; 32], target: TargetInfo, body: ReportBody) -> Report {
    // The report key binds only the *target's* MRENCLAVE; the signer of the
    // target is irrelevant, mirrored from keys::derive_key.
    let key = derive_key(
        device_key,
        KeyRequest::Report,
        &target.mrenclave,
        &Measurement([0u8; 32]),
    );
    let mac = hmac_sha256(&key, &body.to_bytes());
    Report { body, target, mac }
}

/// Verifies a REPORT with the report key obtained via EGETKEY.
///
/// The verifying enclave calls EGETKEY(Report) for its own report key and
/// checks the MAC; success proves the report was produced by EREPORT *on
/// the same platform* and targeted at this enclave.
pub fn verify_report(report_key: &[u8; 32], report: &Report) -> Result<()> {
    if hmac_verify(report_key, &report.body.to_bytes(), &report.mac) {
        Ok(())
    } else {
        Err(SgxError::ReportMacMismatch)
    }
}

/// Packs arbitrary bytes into the fixed-size report data field (hashing is
/// the caller's job if the payload exceeds 64 bytes).
pub fn report_data_from(bytes: &[u8]) -> [u8; REPORT_DATA_LEN] {
    let mut out = [0u8; REPORT_DATA_LEN];
    let n = bytes.len().min(REPORT_DATA_LEN);
    // teenet-analyze: allow(enclave-index) -- n is min-clamped to both slice lengths
    out[..n].copy_from_slice(&bytes[..n]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(b: u8) -> Measurement {
        Measurement([b; 32])
    }

    fn sample_body() -> ReportBody {
        ReportBody {
            mrenclave: m(1),
            mrsigner: m(2),
            isv_svn: 3,
            report_data: report_data_from(b"user data"),
        }
    }

    #[test]
    fn report_roundtrip_on_same_platform() {
        let dk = [5u8; 32];
        let target = TargetInfo { mrenclave: m(9) };
        let report = ereport(&dk, target, sample_body());
        let report_key = derive_key(&dk, KeyRequest::Report, &m(9), &m(0));
        verify_report(&report_key, &report).unwrap();
    }

    #[test]
    fn report_fails_on_other_platform() {
        // Reports are platform-local: a report key derived from a different
        // device key must not verify.
        let report = ereport(&[5u8; 32], TargetInfo { mrenclave: m(9) }, sample_body());
        let other_key = derive_key(&[6u8; 32], KeyRequest::Report, &m(9), &m(0));
        assert!(verify_report(&other_key, &report).is_err());
    }

    #[test]
    fn report_fails_for_wrong_target() {
        let dk = [5u8; 32];
        let report = ereport(&dk, TargetInfo { mrenclave: m(9) }, sample_body());
        // An enclave other than the target cannot verify it.
        let eavesdropper_key = derive_key(&dk, KeyRequest::Report, &m(8), &m(0));
        assert!(verify_report(&eavesdropper_key, &report).is_err());
    }

    #[test]
    fn tampered_body_detected() {
        let dk = [5u8; 32];
        let target = TargetInfo { mrenclave: m(9) };
        let mut report = ereport(&dk, target, sample_body());
        report.body.mrenclave = m(66); // claim to be a different enclave
        let report_key = derive_key(&dk, KeyRequest::Report, &m(9), &m(0));
        assert!(verify_report(&report_key, &report).is_err());
    }

    #[test]
    fn tampered_report_data_detected() {
        let dk = [5u8; 32];
        let target = TargetInfo { mrenclave: m(9) };
        let mut report = ereport(&dk, target, sample_body());
        report.body.report_data[0] ^= 1;
        let report_key = derive_key(&dk, KeyRequest::Report, &m(9), &m(0));
        assert!(verify_report(&report_key, &report).is_err());
    }

    #[test]
    fn report_data_packing() {
        let d = report_data_from(b"abc");
        assert_eq!(&d[..3], b"abc");
        assert!(d[3..].iter().all(|&b| b == 0));
        let long = vec![7u8; 100];
        let d = report_data_from(&long);
        assert!(d.iter().all(|&b| b == 7));
    }
}
