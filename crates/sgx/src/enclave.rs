//! Enclaves, enclave programs and the in-enclave execution context.
//!
//! An *enclave program* is the application logic that would be compiled
//! into a real enclave binary. Its **identity** is the measurement of its
//! [`EnclaveProgram::code_image`] — a canonical byte serialisation of the
//! code and static configuration. Two behaviourally different programs
//! (e.g. a legitimate Tor OR and one modified to snoop, paper §3.2) must
//! produce different images, which is what makes attestation-based
//! exclusion of tampered nodes work in the case studies.

use teenet_crypto::SecureRng;

use crate::cost::{CostModel, Counters};
use crate::epc::{Epc, PageType};
use crate::error::{Result, SgxError};
use crate::keys::{derive_key, KeyRequest};
use crate::measurement::{Measurement, PAGE_SIZE};
use crate::ocall::HostCalls;
use crate::report::{ereport, Report, ReportBody, TargetInfo, REPORT_DATA_LEN};
use crate::seal::{seal, unseal, SealedBlob};
use crate::switchless::{Post, SwitchlessState, TransitionMode, TransitionStats};

/// Identifier of a loaded enclave within one platform.
pub type EnclaveId = u64;

/// Application logic executed inside an enclave.
///
/// `Send` is a supertrait: a loaded [`Enclave`] (and therefore a whole
/// [`crate::Platform`]) must be movable to another OS thread so one
/// independent platform instance can live per load-generation shard.
/// Programs hold only owned protocol state, so the bound costs nothing.
pub trait EnclaveProgram: Send {
    /// Canonical byte image of the program; its hash is the MRENCLAVE.
    ///
    /// Must cover everything behaviour-defining (code version, static
    /// configuration); anything an attacker could change to alter behaviour
    /// belongs in the image.
    fn code_image(&self) -> Vec<u8>;

    /// Handles an ecall with function id `fn_id` and marshalled `input`.
    fn ecall(&mut self, ctx: &mut EnclaveCtx<'_>, fn_id: u64, input: &[u8]) -> Result<Vec<u8>>;
}

/// A loaded enclave instance.
pub struct Enclave {
    /// Platform-local id.
    pub id: EnclaveId,
    /// Code identity.
    pub mrenclave: Measurement,
    /// Author identity.
    pub mrsigner: Measurement,
    /// Security version from the SIGSTRUCT.
    pub isv_svn: u16,
    /// Instructions executed inside (and on behalf of) this enclave.
    pub counters: Counters,
    /// Transition mode, call ring and crossing statistics.
    pub switchless: SwitchlessState,
    pub(crate) program: Option<Box<dyn EnclaveProgram>>,
    pub(crate) next_alloc_offset: usize,
    pub(crate) heap_used: usize,
    pub(crate) destroyed: bool,
}

/// Everything an enclave program can reach while executing: the "hardware"
/// interface (EGETKEY, EREPORT, randomness), the cost accounting, dynamic
/// memory, and the untrusted host (ocalls).
pub struct EnclaveCtx<'a> {
    /// Cost counters of the running enclave (charged as the program runs).
    pub counters: &'a mut Counters,
    /// The platform cost model.
    pub model: &'a CostModel,
    /// The running enclave's own identity.
    pub mrenclave: Measurement,
    /// The running enclave's author identity.
    pub mrsigner: Measurement,
    /// The running enclave's security version.
    pub isv_svn: u16,
    pub(crate) device_key: &'a [u8; 32],
    pub(crate) rng: &'a mut SecureRng,
    pub(crate) host: &'a mut dyn HostCalls,
    pub(crate) epc: &'a mut Epc,
    pub(crate) enclave_id: EnclaveId,
    pub(crate) next_alloc_offset: &'a mut usize,
    pub(crate) heap_used: &'a mut usize,
    pub(crate) switchless: &'a mut SwitchlessState,
}

impl<'a> EnclaveCtx<'a> {
    /// Charges `n` modelled normal instructions of application work.
    pub fn charge(&mut self, n: u64) {
        self.counters.normal(n);
    }

    /// The enclave's current transition mode.
    pub fn transition_mode(&self) -> TransitionMode {
        self.switchless.mode
    }

    /// Crossing statistics accumulated so far.
    pub fn transition_stats(&self) -> TransitionStats {
        self.switchless.stats
    }

    /// Routes a would-be host crossing of `sgx_instr` SGX instructions
    /// (`sgx_instr / 2` EEXIT/EENTER pairs) through the transition layer.
    ///
    /// Classic mode charges the SGX instructions as-is. Switchless mode
    /// posts the request to the shared call ring instead — ring-post plus
    /// worker-poll normal instructions per pair, zero SGX instructions —
    /// unless the worker is asleep or the ring is full, in which case one
    /// real transition is taken as a fallback. Returns `true` when the
    /// crossing was elided.
    fn host_transition(&mut self, sgx_instr: u64) -> bool {
        let pairs = (sgx_instr / 2).max(1);
        match self.switchless.post(pairs) {
            Post::Classic => {
                self.counters.sgx(sgx_instr);
                self.switchless.stats.taken += pairs;
                false
            }
            Post::Elided => {
                self.counters
                    .normal(pairs * (self.model.switchless_post + self.model.switchless_poll));
                self.switchless.stats.elided += pairs;
                true
            }
            Post::Fallback { woke } => {
                self.counters.sgx(sgx_instr);
                self.switchless.stats.taken += pairs;
                self.switchless.stats.fallbacks += 1;
                if woke {
                    self.counters.normal(self.model.switchless_wake);
                }
                false
            }
        }
    }

    /// EGETKEY: derives a key bound to this enclave's identity.
    pub fn egetkey(&mut self, request: KeyRequest) -> [u8; 32] {
        self.counters.sgx(1);
        derive_key(self.device_key, request, &self.mrenclave, &self.mrsigner)
    }

    /// EREPORT: produces a REPORT about this enclave for `target`,
    /// embedding `data` (truncated/zero-padded to 64 bytes).
    pub fn ereport(&mut self, target: TargetInfo, data: &[u8; REPORT_DATA_LEN]) -> Report {
        self.counters.sgx(1);
        // MAC computation happens in microcode, but the marshalling around
        // it is ordinary work.
        self.counters.normal(self.model.hmac_short);
        let body = ReportBody {
            mrenclave: self.mrenclave,
            mrsigner: self.mrsigner,
            isv_svn: self.isv_svn,
            report_data: *data,
        };
        ereport(self.device_key, target, body)
    }

    /// RDRAND-style randomness (deterministic per platform seed).
    pub fn random(&mut self, dest: &mut [u8]) {
        self.counters.normal(10 * dest.len() as u64);
        self.rng.fill_bytes(dest);
    }

    /// Dynamic in-enclave memory allocation.
    ///
    /// Models what the paper blames for much of the steady-state overhead:
    /// "mainly due to in-enclave I/O and dynamic memory allocation that
    /// cause context switches" (§5). Each allocation charges the model's
    /// base cost; every new EPC page adds a page cost and an
    /// exit/re-enter pair.
    pub fn alloc(&mut self, bytes: usize) -> Result<()> {
        let pages = bytes.div_ceil(PAGE_SIZE);
        self.counters.normal(self.model.alloc_base);
        if pages > 0 {
            self.ensure_epc_room(pages)?;
            self.epc.add_pages(
                self.enclave_id,
                *self.next_alloc_offset,
                pages,
                PageType::Regular,
            )?;
            *self.next_alloc_offset += pages * PAGE_SIZE;
            self.counters.normal(self.model.alloc_page * pages as u64);
            // Per-page acceptance cost (PVALIDATE/EACCEPT) — zero on the
            // SGX profile, where paging costs live in alloc_page/ewb_page.
            self.counters.normal(self.model.page_accept * pages as u64);
            // Page extension traps to the host (EEXIT + EENTER per request)
            // — elidable through the switchless ring.
            self.host_transition(2);
        }
        Ok(())
    }

    /// Heap-style dynamic allocation: byte-granular, extending the EPC
    /// only when the cumulative heap crosses a page boundary.
    ///
    /// Every call charges the allocator's base cost; a page-boundary
    /// crossing additionally traps to the host for page extension (one
    /// EEXIT/EENTER pair plus the per-page cost), which is the
    /// context-switch behaviour the paper blames for much of the
    /// steady-state overhead (§5). Use [`EnclaveCtx::alloc`] for
    /// page-granular reservations instead.
    pub fn malloc(&mut self, bytes: usize) -> Result<()> {
        self.counters.normal(self.model.alloc_base);
        let backed = self.heap_used.div_ceil(PAGE_SIZE);
        *self.heap_used += bytes;
        let required = self.heap_used.div_ceil(PAGE_SIZE);
        if required > backed {
            let count = required - backed;
            self.ensure_epc_room(count)?;
            self.epc.add_pages(
                self.enclave_id,
                *self.next_alloc_offset,
                count,
                PageType::Regular,
            )?;
            *self.next_alloc_offset += count * PAGE_SIZE;
            self.counters.normal(self.model.alloc_page * count as u64);
            // Per-page acceptance cost (PVALIDATE/EACCEPT) — zero on the
            // SGX profile.
            self.counters.normal(self.model.page_accept * count as u64);
            // One page-extension trap (exit + re-enter) — elidable through
            // the switchless ring.
            self.host_transition(2);
        }
        Ok(())
    }

    /// Makes room in the EPC for `pages` new pages, evicting the oldest
    /// resident pages (EWB) if the cache is oversubscribed.
    ///
    /// Each eviction pays the paging crypto (encrypt + MAC a 4 KiB page)
    /// and an asynchronous exit/resume pair — the cost that makes
    /// EPC-oversubscribed enclaves slow on real hardware.
    fn ensure_epc_room(&mut self, pages: usize) -> Result<()> {
        let free = self.epc.free_pages();
        if free >= pages {
            return Ok(());
        }
        let needed = pages - free;
        let evicted = self.epc.evict_pages(needed);
        if evicted < needed {
            return Err(SgxError::EpcExhausted {
                requested: pages,
                free: self.epc.free_pages(),
            });
        }
        self.counters.normal(self.model.ewb_page * evicted as u64);
        self.counters.sgx(2 * evicted as u64); // AEX + ERESUME per page
        Ok(())
    }

    /// An ocall: exit the enclave, run a host service, re-enter.
    ///
    /// Charges EEXIT + EENTER and marshalling proportional to the payload.
    /// The returned bytes are **untrusted**; pass them through
    /// [`crate::ocall::checked`] before use.
    pub fn ocall(&mut self, name: &str, payload: &[u8]) -> Vec<u8> {
        self.host_transition(2);
        let reply = self.host.ocall(name, payload);
        self.counters
            .normal(((payload.len() + reply.len()) as u64) / 8 + 50);
        reply
    }

    /// Seals `plaintext` under this enclave's seal key (given policy).
    pub fn seal(&mut self, policy: KeyRequest, label: &[u8], plaintext: &[u8]) -> SealedBlob {
        let key = self.egetkey(policy);
        let mut nonce = [0u8; 16];
        self.random(&mut nonce);
        self.counters
            .normal(self.model.aes_key_schedule + self.model.aes_bytes(plaintext.len()));
        seal(&key, label, nonce, plaintext)
    }

    /// Unseals a blob sealed under the same policy by an eligible enclave.
    pub fn unseal(&mut self, policy: KeyRequest, blob: &SealedBlob) -> Result<Vec<u8>> {
        let key = self.egetkey(policy);
        self.counters
            .normal(self.model.aes_key_schedule + self.model.aes_bytes(blob.ciphertext.len()));
        unseal(&key, blob)
    }

    /// Sends packets to the host for transmission, optionally encrypting
    /// them first — the Table 2 I/O model.
    ///
    /// One batch costs `io_batch_sgx` SGX instructions plus `io_packet_sgx`
    /// per packet, `send_base` normal instructions plus a copy per packet,
    /// and if `encrypt` is set one AES key schedule plus per-byte AES work.
    pub fn send_packets(&mut self, packets: &[&[u8]], encrypt: bool) {
        self.host_transition(self.model.io_batch_sgx);
        self.counters.normal(self.model.send_base);
        if encrypt {
            self.counters.normal(self.model.aes_key_schedule);
        }
        for p in packets {
            self.host_transition(self.model.io_packet_sgx);
            self.counters.normal(self.model.packet_copy);
            if encrypt {
                self.counters.normal(self.model.aes_bytes(p.len()));
            }
            // The actual transmission is a host service; its reply (bytes
            // written) goes through an Iago check by the caller if used.
            self.host.ocall("send", p);
        }
    }
}

impl Enclave {
    /// Number of 4-KiB pages the program image occupies.
    pub fn image_pages(image_len: usize) -> usize {
        image_len.div_ceil(PAGE_SIZE).max(1)
    }

    pub(crate) fn check_alive(&self, op: &'static str) -> Result<()> {
        if self.destroyed {
            Err(SgxError::BadState {
                op,
                state: "destroyed",
            })
        } else {
            Ok(())
        }
    }
}
