//! The VM-TEE backend: a TDX/SEV-SNP-style cost model behind the same
//! [`TeePlatform`] surface as the SGX emulator.
//!
//! A VM-level TEE changes the *shape* of trusted-execution costs, not the
//! workloads:
//!
//! * **No world switch per guest call.** Code inside the guest calls
//!   trusted code directly — [`CostModel::vmtee`] prices the per-ecall
//!   transition pair at zero (`ecall_pair_sgx = 0`). Crossings that leave
//!   the guest (ocalls, packet I/O) still cost VM exits, charged in the
//!   cheaper `sgx_instr_cycles` of the VM-TEE profile.
//! * **Page acceptance instead of EPC paging.** Guest private memory is
//!   large enough that eviction never fires ([`VMTEE_EPC_PAGES`]), but
//!   every newly accepted page pays a PVALIDATE/EACCEPT-style cost
//!   (`page_accept`).
//! * **A security processor instead of a quoting enclave.** Attestation
//!   reports are signed by the platform [`SecurityProcessor`] under a
//!   per-chip key (VCEK) whose endorsement — a vendor-root signature over
//!   the VCEK public key — ships with the evidence, SEV-SNP style. The
//!   vendor root is the same key that anchors the EPID group, so one
//!   attestation root serves both backends.
//!
//! Everything else — enclave lifecycle, measurements, sealing, switchless
//! rings, counter accounting — is delegated to an inner SGX [`Platform`]
//! re-priced with the VM-TEE cost model.

use teenet_crypto::schnorr::{SchnorrGroup, Signature, SigningKey, VerifyingKey};
use teenet_crypto::sha256::sha256;
use teenet_crypto::SecureRng;

use crate::cost::{CostModel, Counters};
use crate::enclave::{EnclaveId, EnclaveProgram};
use crate::error::{Result, SgxError};
use crate::keys::{derive_key, KeyRequest};
use crate::measurement::Measurement;
use crate::ocall::HostCalls;
use crate::platform::Platform;
use crate::quote::EpidGroup;
use crate::report::{verify_report, Report, ReportBody, TargetInfo};
use crate::switchless::{SwitchlessConfig, TransitionMode, TransitionStats};
use crate::tee::{Evidence, TeeBackend, TeePlatform, VMTEE_EVIDENCE_SENTINEL};
use crate::wire::{put_var, take, take_arr, take_var};

/// Guest private-memory capacity of a VM TEE, in pages. Large enough that
/// demand paging/eviction never fires (the VM-TEE story replaces EPC
/// pressure with per-page acceptance costs); the EPC bookkeeping is lazy,
/// so the capacity costs nothing up front.
pub const VMTEE_EPC_PAGES: usize = 1 << 20;

/// The well-known identity of the platform security processor's firmware
/// (same on every platform, like the quoting enclave's measurement).
pub fn psp_measurement() -> Measurement {
    Measurement(sha256(b"teenet-vmtee-psp-v1"))
}

fn endorsement_message(vcek_pub: &VerifyingKey) -> Vec<u8> {
    let pub_bytes = vcek_pub.to_bytes();
    let mut msg = Vec::with_capacity(10 + pub_bytes.len());
    msg.extend_from_slice(b"VMTEE-VCEK");
    msg.extend_from_slice(&pub_bytes);
    msg
}

fn report_message(body: &ReportBody) -> Vec<u8> {
    let mut msg = Vec::with_capacity(12 + ReportBody::WIRE_LEN);
    msg.extend_from_slice(b"VMTEE-REPORT");
    msg.extend_from_slice(&body.to_bytes());
    msg
}

/// VM-TEE attestation evidence: a report body signed under the platform's
/// VCEK, plus the vendor-root endorsement of that VCEK (the host-fetched
/// certificate chain of SEV-SNP, collapsed to its one load-bearing link).
#[derive(Debug, Clone)]
pub struct VmEvidence {
    /// The attested report body (identity + user data).
    pub body: ReportBody,
    /// Public half of the per-chip report-signing key (VCEK).
    pub signing_pub: VerifyingKey,
    /// VCEK signature over the report body.
    pub report_sig: Signature,
    /// Vendor-root signature over the VCEK public key.
    pub endorsement: Signature,
}

impl VmEvidence {
    /// Verifies the endorsement chain and then the report signature,
    /// charging both verifications to `counters`.
    ///
    /// `root` is the vendor root — the same public key that verifies EPID
    /// quotes, so challengers hold one attestation root per deployment.
    pub fn verify(
        &self,
        root: &VerifyingKey,
        counters: &mut Counters,
        model: &CostModel,
    ) -> Result<()> {
        counters.normal(model.quote_verify);
        root.verify(&endorsement_message(&self.signing_pub), &self.endorsement)
            .map_err(|_| SgxError::EndorsementInvalid("vendor root signature over VCEK"))?;
        counters.normal(model.quote_verify);
        self.signing_pub
            .verify(&report_message(&self.body), &self.report_sig)
            .map_err(|_| SgxError::QuoteInvalid("VCEK report signature"))
    }

    /// Canonical wire encoding: the report body, the
    /// [`VMTEE_EVIDENCE_SENTINEL`] in the group-id position (so EPID and
    /// VM-TEE evidence share one parser entry point), then the VCEK
    /// public key, report signature and endorsement as length-prefixed
    /// fields.
    pub fn to_bytes(&self) -> Vec<u8> {
        let pub_bytes = self.signing_pub.to_bytes();
        let sig_bytes = self.report_sig.to_bytes();
        let end_bytes = self.endorsement.to_bytes();
        let mut out = Vec::with_capacity(
            ReportBody::WIRE_LEN + 8 + 6 + pub_bytes.len() + sig_bytes.len() + end_bytes.len(),
        );
        out.extend_from_slice(&self.body.to_bytes());
        out.extend_from_slice(&VMTEE_EVIDENCE_SENTINEL.to_le_bytes());
        put_var(&mut out, &pub_bytes);
        put_var(&mut out, &sig_bytes);
        put_var(&mut out, &end_bytes);
        out
    }

    /// Parses the encoding of [`VmEvidence::to_bytes`].
    pub fn from_bytes(mut buf: &[u8]) -> Result<Self> {
        let body = take(&mut buf, ReportBody::WIRE_LEN, "vm evidence body")?;
        let sentinel = take_arr::<8>(&mut buf, "vm evidence sentinel")?;
        if u64::from_le_bytes(sentinel) != VMTEE_EVIDENCE_SENTINEL {
            return Err(SgxError::Crypto(teenet_crypto::CryptoError::Malformed(
                "vm evidence sentinel",
            )));
        }
        let pub_bytes = take_var(&mut buf, "vm evidence vcek key")?;
        let sig_bytes = take_var(&mut buf, "vm evidence report signature")?;
        let end_bytes = take_var(&mut buf, "vm evidence endorsement")?;
        if !buf.is_empty() {
            return Err(SgxError::Crypto(teenet_crypto::CryptoError::Malformed(
                "vm evidence trailing bytes",
            )));
        }
        Ok(VmEvidence {
            body: ReportBody::from_bytes(body)?,
            signing_pub: VerifyingKey::from_bytes(&SchnorrGroup::standard(), pub_bytes)
                .map_err(SgxError::Crypto)?,
            report_sig: Signature::from_bytes(sig_bytes).map_err(SgxError::Crypto)?,
            endorsement: Signature::from_bytes(end_bytes).map_err(SgxError::Crypto)?,
        })
    }
}

/// The platform security processor: holds the per-chip VCEK and its
/// vendor-root endorsement, and turns REPORTs into [`VmEvidence`].
pub struct SecurityProcessor {
    /// Instructions executed by (and on behalf of) the PSP.
    pub counters: Counters,
    vcek: SigningKey,
    endorsement: Signature,
    rng: SecureRng,
}

impl SecurityProcessor {
    /// Provisions the PSP: generates the per-chip VCEK and has the vendor
    /// (the attestation group's root key) endorse it — the manufacturing
    /// step SEV-SNP performs at chip fabrication.
    pub fn new(group: &EpidGroup, mut rng: SecureRng) -> Result<Self> {
        let vcek = SigningKey::generate(&SchnorrGroup::standard(), &mut rng)?;
        let endorsement = group
            .signing_key()
            .sign(&endorsement_message(&vcek.verifying_key()), &mut rng)
            .map_err(SgxError::Crypto)?;
        Ok(SecurityProcessor {
            counters: Counters::new(),
            vcek,
            endorsement,
            rng,
        })
    }

    /// The TargetInfo guests use to address attestation reports to the
    /// PSP.
    pub fn target_info(&self) -> TargetInfo {
        TargetInfo {
            mrenclave: psp_measurement(),
        }
    }

    /// Turns a REPORT (targeted at the PSP) into signed evidence.
    ///
    /// The guest-to-PSP mailbox costs one crossing pair; the PSP then
    /// verifies the report MAC (same EGETKEY/HMAC discipline as the
    /// quoting enclave) and signs the body under the VCEK. There is no
    /// EPID socket shuffle and no mutual intra-attestation phase — the
    /// PSP is hardware, not a peer enclave — which is why VM-TEE
    /// attestation is cheaper in transitions but still pays the signature.
    pub fn attest(
        &mut self,
        device_key: &[u8; 32],
        report: &Report,
        model: &CostModel,
    ) -> Result<VmEvidence> {
        // Guest writes the report into the PSP mailbox and reads the
        // evidence back: one crossing pair.
        self.counters.sgx(2);
        if report.target.mrenclave != psp_measurement() {
            return Err(SgxError::QuoteInvalid("report not targeted at PSP"));
        }
        let report_key = derive_key(
            device_key,
            KeyRequest::Report,
            &psp_measurement(),
            &Measurement([0u8; 32]),
        );
        self.counters.normal(model.hmac_short);
        verify_report(&report_key, report)?;
        self.counters.normal(model.quote_sign);
        self.counters.normal(model.attest_quote_base);
        let report_sig = self
            .vcek
            .sign(&report_message(&report.body), &mut self.rng)
            .map_err(SgxError::Crypto)?;
        Ok(VmEvidence {
            body: report.body.clone(),
            signing_pub: self.vcek.verifying_key(),
            report_sig,
            endorsement: self.endorsement.clone(),
        })
    }
}

/// A VM-TEE machine: an inner SGX emulator re-priced with
/// [`CostModel::vmtee`], with the quoting enclave replaced by a
/// [`SecurityProcessor`].
pub struct VmTeePlatform {
    inner: Platform,
    psp: SecurityProcessor,
}

impl VmTeePlatform {
    /// Builds a VM-TEE platform named `name`, endorsed by `group`'s root
    /// key, seeded with `seed`. Deterministic in `(name, seed)` like the
    /// SGX platform.
    pub fn new(name: &str, group: &EpidGroup, seed: u64) -> Result<Self> {
        let mut inner = Platform::with_epc(name, group, seed, VMTEE_EPC_PAGES);
        inner.model = CostModel::vmtee();
        let mut psp_seed = Vec::from(name.as_bytes());
        psp_seed.extend_from_slice(&seed.to_le_bytes());
        psp_seed.extend_from_slice(b"vmtee-psp");
        let psp = SecurityProcessor::new(group, SecureRng::from_seed(&psp_seed))?;
        Ok(VmTeePlatform { inner, psp })
    }
}

impl TeePlatform for VmTeePlatform {
    fn backend(&self) -> TeeBackend {
        TeeBackend::VmTee
    }

    fn platform_name(&self) -> &str {
        &self.inner.name
    }

    fn model(&self) -> &CostModel {
        &self.inner.model
    }

    fn create_signed(
        &mut self,
        program: Box<dyn EnclaveProgram>,
        author: &SigningKey,
        isv_svn: u16,
    ) -> Result<EnclaveId> {
        self.inner.create_signed(program, author, isv_svn)
    }

    fn destroy_enclave(&mut self, id: EnclaveId) -> Result<()> {
        self.inner.destroy_enclave(id)
    }

    fn ecall(
        &mut self,
        id: EnclaveId,
        fn_id: u64,
        input: &[u8],
        host: &mut dyn HostCalls,
    ) -> Result<Vec<u8>> {
        self.inner.ecall(id, fn_id, input, host)
    }

    fn ecall_batch(
        &mut self,
        id: EnclaveId,
        calls: &[(u64, Vec<u8>)],
        host: &mut dyn HostCalls,
    ) -> Result<Vec<Vec<u8>>> {
        self.inner.ecall_batch(id, calls, host)
    }

    fn set_transition_mode(&mut self, id: EnclaveId, mode: TransitionMode) -> Result<()> {
        self.inner.set_transition_mode(id, mode)
    }

    fn configure_switchless(&mut self, id: EnclaveId, config: SwitchlessConfig) -> Result<()> {
        self.inner.configure_switchless(id, config)
    }

    fn transition_stats_of(&self, id: EnclaveId) -> Result<TransitionStats> {
        self.inner.transition_stats_of(id)
    }

    fn total_transition_stats(&self) -> TransitionStats {
        self.inner.total_transition_stats()
    }

    fn counters_of(&self, id: EnclaveId) -> Result<Counters> {
        self.inner.counters_of(id)
    }

    fn attestor_counters(&self) -> Counters {
        self.psp.counters
    }

    fn reset_counters(&mut self, id: EnclaveId) -> Result<()> {
        self.inner.reset_counters(id)
    }

    fn total_counters(&self) -> Counters {
        let mut total = Counters::new();
        // The inner platform's total includes its (idle) quoting enclave;
        // the PSP's work is added on top.
        let inner = self.inner.total_counters();
        total.sgx(inner.sgx_instr);
        total.normal(inner.normal_instr);
        total.sgx(self.psp.counters.sgx_instr);
        total.normal(self.psp.counters.normal_instr);
        total
    }

    fn measurement_of(&self, id: EnclaveId) -> Result<Measurement> {
        self.inner.measurement_of(id)
    }

    fn attestation_target_info(&self) -> TargetInfo {
        self.psp.target_info()
    }

    fn evidence(&mut self, report: &Report) -> Result<Evidence> {
        let model = self.inner.model.clone();
        Ok(Evidence::VmTee(self.psp.attest(
            self.inner.device_key(),
            report,
            &model,
        )?))
    }

    fn epc_free_pages(&self) -> usize {
        self.inner.epc_free_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{ereport, report_data_from};
    use crate::tee::deploy_platform;

    fn setup() -> (EpidGroup, VmTeePlatform) {
        let mut rng = SecureRng::seed_from_u64(42);
        let group = EpidGroup::new(7, &mut rng).unwrap();
        let p = VmTeePlatform::new("vm0", &group, 9).unwrap();
        (group, p)
    }

    fn report_for_psp(p: &VmTeePlatform) -> Report {
        let body = ReportBody {
            mrenclave: Measurement([1u8; 32]),
            mrsigner: Measurement([2u8; 32]),
            isv_svn: 1,
            report_data: report_data_from(b"dh-pubkey-digest"),
        };
        ereport(p.inner.device_key(), p.psp.target_info(), body)
    }

    #[test]
    fn evidence_verifies_under_vendor_root() {
        let (group, mut p) = setup();
        let report = report_for_psp(&p);
        let ev = p.evidence(&report).unwrap();
        let model = CostModel::vmtee();
        let mut c = Counters::new();
        ev.verify(&group.public_key(), &mut c, &model).unwrap();
        // Endorsement check + report signature check.
        assert_eq!(c.normal_instr, 2 * model.quote_verify);
        assert_eq!(ev.backend(), TeeBackend::VmTee);
        assert_eq!(ev.body().mrenclave, Measurement([1u8; 32]));
    }

    #[test]
    fn evidence_wire_roundtrip_via_dispatcher() {
        let (group, mut p) = setup();
        let report = report_for_psp(&p);
        let ev = p.evidence(&report).unwrap();
        let bytes = ev.to_bytes();
        let parsed = Evidence::from_bytes(&bytes).unwrap();
        assert_eq!(parsed.backend(), TeeBackend::VmTee);
        assert_eq!(parsed.body(), ev.body());
        let model = CostModel::vmtee();
        let mut c = Counters::new();
        parsed.verify(&group.public_key(), &mut c, &model).unwrap();
        assert_eq!(parsed.to_bytes(), bytes, "canonical re-encoding");
    }

    #[test]
    fn wrong_root_is_an_endorsement_error() {
        let (_, mut p) = setup();
        let mut rng = SecureRng::seed_from_u64(99);
        let other = EpidGroup::new(8, &mut rng).unwrap();
        let report = report_for_psp(&p);
        let ev = p.evidence(&report).unwrap();
        let mut c = Counters::new();
        assert!(matches!(
            ev.verify(&other.public_key(), &mut c, &CostModel::vmtee()),
            Err(SgxError::EndorsementInvalid(_))
        ));
    }

    #[test]
    fn tampered_body_fails_report_signature() {
        let (group, mut p) = setup();
        let report = report_for_psp(&p);
        let ev = p.evidence(&report).unwrap();
        let Evidence::VmTee(mut vm) = ev else {
            panic!("vm evidence expected")
        };
        vm.body.report_data[0] ^= 1;
        let mut c = Counters::new();
        assert!(matches!(
            vm.verify(&group.public_key(), &mut c, &CostModel::vmtee()),
            Err(SgxError::QuoteInvalid(_))
        ));
    }

    #[test]
    fn psp_rejects_misdirected_and_forged_reports() {
        let (_, mut p) = setup();
        let body = ReportBody {
            mrenclave: Measurement([1u8; 32]),
            mrsigner: Measurement([2u8; 32]),
            isv_svn: 1,
            report_data: [0u8; 64],
        };
        // Targeted at some other enclave, not the PSP.
        let wrong_target = ereport(
            p.inner.device_key(),
            TargetInfo {
                mrenclave: Measurement([9u8; 32]),
            },
            body.clone(),
        );
        assert!(matches!(
            p.evidence(&wrong_target),
            Err(SgxError::QuoteInvalid(_))
        ));
        // MACed on a different platform (different device key).
        let forged = ereport(&[6u8; 32], p.psp.target_info(), body);
        assert!(matches!(
            p.evidence(&forged),
            Err(SgxError::ReportMacMismatch)
        ));
    }

    #[test]
    fn truncated_evidence_is_rejected() {
        let (_, mut p) = setup();
        let report = report_for_psp(&p);
        let ev = p.evidence(&report).unwrap();
        let bytes = ev.to_bytes();
        assert!(VmEvidence::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut long = bytes.clone();
        long.push(0);
        assert!(VmEvidence::from_bytes(&long).is_err());
    }

    #[test]
    fn vmtee_platform_is_priced_by_the_vmtee_profile() {
        let mut rng = SecureRng::seed_from_u64(5);
        let group = EpidGroup::new(1, &mut rng).unwrap();
        let p = deploy_platform(TeeBackend::VmTee, "vm1", &group, 3).unwrap();
        assert_eq!(p.backend(), TeeBackend::VmTee);
        assert_eq!(p.platform_name(), "vm1");
        assert_eq!(p.model(), &CostModel::vmtee());
        assert_eq!(p.model().ecall_pair_sgx, 0);
        assert_eq!(p.attestation_target_info().mrenclave, psp_measurement());
        assert!(p.epc_free_pages() >= VMTEE_EPC_PAGES - 64);
    }

    #[test]
    fn evidence_is_deterministic_in_name_and_seed() {
        let mut rng = SecureRng::seed_from_u64(42);
        let group = EpidGroup::new(7, &mut rng).unwrap();
        let mut a = VmTeePlatform::new("vm0", &group, 9).unwrap();
        let mut b = VmTeePlatform::new("vm0", &group, 9).unwrap();
        let ra = report_for_psp(&a);
        let rb = report_for_psp(&b);
        assert_eq!(
            a.evidence(&ra).unwrap().to_bytes(),
            b.evidence(&rb).unwrap().to_bytes()
        );
    }
}
