//! Instruction and cycle accounting — the reproduction's measurement model.
//!
//! The paper characterises overhead as two counters per enclave role:
//! **SGX(U) instructions** (user-mode SGX instructions: EENTER, EEXIT,
//! EREPORT, EGETKEY, …) and **normal instructions**, then converts to cycles
//! with (§5 footnote 6):
//!
//! ```text
//! cycles = 10_000 × #SGX_instructions + IPC × #normal_instructions
//! ```
//!
//! where "IPC" is 1.8 (dimensionally cycles-per-instruction; we keep the
//! paper's arithmetic so our cycle numbers are directly comparable, and call
//! the constant [`CostModel::cpi`]).
//!
//! OpenSGX counted instructions of real x86 binaries; we execute Rust, so we
//! charge each primitive operation a fixed normal-instruction cost instead.
//! The constants below are calibrated once against the paper's
//! micro-measurements (Tables 1 and 2) and then held fixed for the macro
//! experiments (Tables 3–4, Figure 3), which therefore are *predictions* of
//! the model rather than fits. Provenance of each constant:
//!
//! | constant | calibrated from |
//! |---|---|
//! | `modexp_1024` = 112 M | Table 1: challenger w/ DH − w/o DH = 224 M over two modexps (keygen + shared secret) |
//! | `dh_param_gen` = 4 060 M | Table 1: target w/ DH − w/o DH − 2 modexps (the target generates the DH parameters, which dominates: "the Diffie-Hellman key exchange takes up 90% of the cycles") |
//! | `quote_sign`/`quote_verify` = 112 M | Table 1: quoting 125 M and challenger 124 M w/o DH are dominated by one public-key operation each |
//! | `aes_key_schedule` = 75 600 | Table 2: crypto − non-crypto for 1 packet (84 K) minus one MTU encryption |
//! | `aes_block` = 81 | Table 2: crypto delta per packet across the 100-packet batch (≈7.6 K per 1500 B MTU = 94 blocks) |
//! | `packet_copy` = 1 250, `send_base` = 11 750 | Table 2: w/o crypto column (13 K for 1, 136 K for 100) |
//! | SGX instr per I/O: 2/packet + 4/batch | Table 2: 6 for 1 packet, 204 for 100 |

/// Counters of executed instructions, split the way the paper reports them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// User-mode SGX instructions (EENTER/EEXIT/ERESUME/EREPORT/EGETKEY/…).
    pub sgx_instr: u64,
    /// Ordinary instructions executed (modelled).
    pub normal_instr: u64,
}

impl Counters {
    /// A zeroed counter pair.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` SGX instructions.
    pub fn sgx(&mut self, n: u64) {
        self.sgx_instr += n;
    }

    /// Adds `n` normal instructions.
    pub fn normal(&mut self, n: u64) {
        self.normal_instr += n;
    }

    /// Accumulates another counter pair into this one.
    pub fn merge(&mut self, other: Counters) {
        self.sgx_instr += other.sgx_instr;
        self.normal_instr += other.normal_instr;
    }

    /// Difference since an earlier snapshot (`self - earlier`).
    pub fn since(&self, earlier: Counters) -> Counters {
        Counters {
            sgx_instr: self.sgx_instr - earlier.sgx_instr,
            normal_instr: self.normal_instr - earlier.normal_instr,
        }
    }

    /// Converts to CPU cycles under `model` (paper §5 fn. 6).
    pub fn cycles(&self, model: &CostModel) -> u64 {
        self.sgx_instr * model.sgx_instr_cycles + (self.normal_instr as f64 * model.cpi) as u64
    }
}

/// The calibrated cost model. All costs in normal instructions unless noted.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Cycles charged per SGX instruction (paper assumes 10 000).
    pub sgx_instr_cycles: u64,
    /// Cycles per normal instruction (paper's "IPC" of 1.8).
    pub cpi: f64,

    // --- public-key cryptography ---
    /// One 1024-bit modular exponentiation.
    pub modexp_1024: u64,
    /// Diffie–Hellman parameter (prime) generation, 1024-bit.
    pub dh_param_gen: u64,
    /// Signing a QUOTE in the quoting enclave (EPID stand-in).
    pub quote_sign: u64,
    /// Verifying a QUOTE signature in the challenger.
    pub quote_verify: u64,

    // --- symmetric cryptography ---
    /// AES-128 key schedule.
    pub aes_key_schedule: u64,
    /// One AES-128 block operation (16 bytes).
    pub aes_block: u64,
    /// One SHA-256 compression (64 bytes).
    pub sha256_block: u64,
    /// One HMAC-SHA256 over a short message (fixed approximation).
    pub hmac_short: u64,

    // --- enclave I/O (Table 2 model) ---
    /// Fixed normal-instruction cost per send batch (syscall path, buffers).
    pub send_base: u64,
    /// Per-packet copy in/out of the enclave.
    pub packet_copy: u64,
    /// SGX instructions per send batch (ocall setup + completion).
    pub io_batch_sgx: u64,
    /// SGX instructions per packet within a batch (exit + resume).
    pub io_packet_sgx: u64,

    // --- enclave memory management ---
    /// Normal instructions per dynamic allocation inside the enclave
    /// (EPC page-fault handling, EACCEPT-style bookkeeping).
    pub alloc_base: u64,
    /// Additional normal instructions per 4 KiB EPC page touched.
    pub alloc_page: u64,
    /// Normal instructions per page evicted to main memory (EWB: encrypt
    /// + MAC a 4 KiB page, plus versioning bookkeeping).
    pub ewb_page: u64,

    // --- misc attestation bookkeeping (Table 1 residuals) ---
    /// Target-enclave attestation base (report generation, intra-attestation
    /// with the quoting enclave, message marshalling).
    pub attest_target_base: u64,
    /// Quoting-enclave base besides the quote signature.
    pub attest_quote_base: u64,
    /// Challenger base besides signature verification.
    pub attest_challenger_base: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper()
    }
}

impl CostModel {
    /// The model calibrated to the paper's Tables 1–2 (see module docs).
    pub fn paper() -> Self {
        CostModel {
            sgx_instr_cycles: 10_000,
            cpi: 1.8,
            modexp_1024: 112_000_000,
            dh_param_gen: 3_960_000_000,
            quote_sign: 112_000_000,
            quote_verify: 112_000_000,
            aes_key_schedule: 75_600,
            aes_block: 81,
            sha256_block: 300,
            hmac_short: 1_500,
            send_base: 11_750,
            packet_copy: 1_250,
            io_batch_sgx: 4,
            io_packet_sgx: 2,
            alloc_base: 1_800,
            alloc_page: 3_200,
            ewb_page: 25_000,
            attest_target_base: 154_000_000,
            attest_quote_base: 13_000_000,
            attest_challenger_base: 12_000_000,
        }
    }

    /// Cost of a modular exponentiation at `bits` modulus size
    /// (cubic scaling from the calibrated 1024-bit cost).
    pub fn modexp(&self, bits: usize) -> u64 {
        let ratio = bits as f64 / 1024.0;
        (self.modexp_1024 as f64 * ratio * ratio * ratio) as u64
    }

    /// Cost of AES-encrypting `len` bytes (excluding key schedule).
    pub fn aes_bytes(&self, len: usize) -> u64 {
        (len.div_ceil(16) as u64) * self.aes_block
    }

    /// Cost of SHA-256 hashing `len` bytes.
    pub fn sha256_bytes(&self, len: usize) -> u64 {
        // One compression per 64-byte block plus one for padding.
        (len as u64 / 64 + 1) * self.sha256_block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_diff() {
        let mut c = Counters::new();
        c.sgx(3);
        c.normal(1000);
        let snap = c;
        c.sgx(2);
        c.normal(500);
        let d = c.since(snap);
        assert_eq!(d.sgx_instr, 2);
        assert_eq!(d.normal_instr, 500);
        let mut m = Counters::new();
        m.merge(c);
        assert_eq!(m, c);
    }

    #[test]
    fn cycle_formula_matches_paper_challenger() {
        // Paper §5: "The challenger enclave consumes 626M cycles" with 8
        // SGX(U) and 348M normal instructions (w/ DH).
        let model = CostModel::paper();
        let c = Counters {
            sgx_instr: 8,
            normal_instr: 348_000_000,
        };
        let cycles = c.cycles(&model);
        // 8 * 10_000 + 1.8 * 348M = 626.48M
        assert_eq!(cycles, 80_000 + 626_400_000);
    }

    #[test]
    fn cycle_formula_matches_paper_remote_platform() {
        // Paper: "the quoting and target enclave [...] consumes 8033M cycles"
        // = (4338M + 125M) * 1.8 + (20 + 17) * 10K ≈ 8033.77M.
        let model = CostModel::paper();
        let c = Counters {
            sgx_instr: 37,
            normal_instr: 4_463_000_000,
        };
        let cycles = c.cycles(&model);
        assert!((8_000_000_000..8_100_000_000).contains(&cycles), "{cycles}");
    }

    #[test]
    fn modexp_scales_cubically() {
        let m = CostModel::paper();
        assert_eq!(m.modexp(1024), m.modexp_1024);
        assert_eq!(m.modexp(2048), m.modexp_1024 * 8);
        assert!(m.modexp(768) < m.modexp_1024 / 2);
    }

    #[test]
    fn aes_cost_rounds_up_blocks() {
        let m = CostModel::paper();
        assert_eq!(m.aes_bytes(16), m.aes_block);
        assert_eq!(m.aes_bytes(17), 2 * m.aes_block);
        assert_eq!(m.aes_bytes(1500), 94 * m.aes_block);
    }

    #[test]
    fn table2_calibration_single_packet() {
        // Reproduce Table 2's "1 packet w/o crypto ≈ 13K" and "w/ crypto ≈ 97K".
        let m = CostModel::paper();
        let without = m.send_base + m.packet_copy;
        assert!((12_000..14_000).contains(&without), "{without}");
        let with = without + m.aes_key_schedule + m.aes_bytes(1500);
        assert!((95_000..99_000).contains(&with), "{with}");
    }

    #[test]
    fn table2_calibration_batch() {
        // "100 packets w/o crypto ≈ 136K, w/ crypto ≈ 972K; 204 SGX instr".
        let m = CostModel::paper();
        let without = m.send_base + 100 * m.packet_copy;
        assert!((130_000..140_000).contains(&without), "{without}");
        let with = without + m.aes_key_schedule + 100 * m.aes_bytes(1500);
        assert!((950_000..990_000).contains(&with), "{with}");
        let sgx = m.io_batch_sgx + 100 * m.io_packet_sgx;
        assert_eq!(sgx, 204);
    }
}
