//! Instruction and cycle accounting — the reproduction's measurement model.
//!
//! The paper characterises overhead as two counters per enclave role:
//! **SGX(U) instructions** (user-mode SGX instructions: EENTER, EEXIT,
//! EREPORT, EGETKEY, …) and **normal instructions**, then converts to cycles
//! with (§5 footnote 6):
//!
//! ```text
//! cycles = 10_000 × #SGX_instructions + IPC × #normal_instructions
//! ```
//!
//! where "IPC" is 1.8 (dimensionally cycles-per-instruction; we keep the
//! paper's arithmetic so our cycle numbers are directly comparable, and
//! store the constant as the exact rational
//! [`CostModel::cpi_num`]/[`CostModel::cpi_den`] = 9/5).
//!
//! OpenSGX counted instructions of real x86 binaries; we execute Rust, so we
//! charge each primitive operation a fixed normal-instruction cost instead.
//! The constants below are calibrated once against the paper's
//! micro-measurements (Tables 1 and 2) and then held fixed for the macro
//! experiments (Tables 3–4, Figure 3), which therefore are *predictions* of
//! the model rather than fits. Provenance of each constant:
//!
//! | constant | calibrated from |
//! |---|---|
//! | `modexp_1024` = 112 M | Table 1: challenger w/ DH − w/o DH = 224 M over two modexps (keygen + shared secret) |
//! | `dh_param_gen` = 4 060 M | Table 1: target w/ DH − w/o DH − 2 modexps (the target generates the DH parameters, which dominates: "the Diffie-Hellman key exchange takes up 90% of the cycles") |
//! | `quote_sign`/`quote_verify` = 112 M | Table 1: quoting 125 M and challenger 124 M w/o DH are dominated by one public-key operation each |
//! | `aes_key_schedule` = 75 600 | Table 2: crypto − non-crypto for 1 packet (84 K) minus one MTU encryption |
//! | `aes_block` = 81 | Table 2: crypto delta per packet across the 100-packet batch (≈7.6 K per 1500 B MTU = 94 blocks) |
//! | `packet_copy` = 1 250, `send_base` = 11 750 | Table 2: w/o crypto column (13 K for 1, 136 K for 100) |
//! | SGX instr per I/O: 2/packet + 4/batch | Table 2: 6 for 1 packet, 204 for 100 |

/// Counters of executed instructions, split the way the paper reports them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// User-mode SGX instructions (EENTER/EEXIT/ERESUME/EREPORT/EGETKEY/…).
    pub sgx_instr: u64,
    /// Ordinary instructions executed (modelled).
    pub normal_instr: u64,
}

impl Counters {
    /// A zeroed counter pair.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` SGX instructions.
    pub fn sgx(&mut self, n: u64) {
        self.sgx_instr += n;
    }

    /// Adds `n` normal instructions.
    pub fn normal(&mut self, n: u64) {
        self.normal_instr += n;
    }

    /// Accumulates another counter pair into this one.
    pub fn merge(&mut self, other: Counters) {
        self.sgx_instr += other.sgx_instr;
        self.normal_instr += other.normal_instr;
    }

    /// Difference since an earlier snapshot (`self - earlier`).
    ///
    /// Saturating: a snapshot taken across a counter reset degrades to
    /// zero instead of aborting a report in release mode (and trips a
    /// `debug_assert!` in debug builds, where the stale snapshot is a
    /// caller bug worth catching).
    pub fn since(&self, earlier: Counters) -> Counters {
        debug_assert!(
            self.sgx_instr >= earlier.sgx_instr && self.normal_instr >= earlier.normal_instr,
            "Counters::since snapshot is ahead of the counter (taken across a reset?): \
             now={self:?} earlier={earlier:?}"
        );
        Counters {
            sgx_instr: self.sgx_instr.saturating_sub(earlier.sgx_instr),
            normal_instr: self.normal_instr.saturating_sub(earlier.normal_instr),
        }
    }

    /// Converts to CPU cycles under `model` (paper §5 fn. 6).
    ///
    /// Exact integer arithmetic: the CPI is an exact rational
    /// ([`CostModel::cpi_num`]/[`CostModel::cpi_den`], 9/5 for the paper's
    /// 1.8), evaluated with 128-bit widening — no f64 rounding above 2^53
    /// instructions, and phase-wise totals stay additive whenever the
    /// per-phase normal-instruction contributions are exact in cycles
    /// (always true for the paper's model, whose charges keep 9·n ≡ 0
    /// mod 5 at phase granularity in the replayed workloads).
    pub fn cycles(&self, model: &CostModel) -> u64 {
        let normal =
            self.normal_instr as u128 * model.cpi_num as u128 / model.cpi_den.max(1) as u128;
        (self.sgx_instr as u128 * model.sgx_instr_cycles as u128 + normal).min(u64::MAX as u128)
            as u64
    }
}

/// The calibrated cost model. All costs in normal instructions unless noted.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Cycles charged per SGX instruction (paper assumes 10 000).
    pub sgx_instr_cycles: u64,
    /// Cycles per normal instruction, numerator (paper's "IPC" of 1.8 is
    /// the exact rational 9/5 — stored as integers so cycle conversion
    /// never loses precision to f64 rounding).
    pub cpi_num: u64,
    /// Cycles per normal instruction, denominator.
    pub cpi_den: u64,

    // --- public-key cryptography ---
    /// One 1024-bit modular exponentiation.
    pub modexp_1024: u64,
    /// Diffie–Hellman parameter (prime) generation, 1024-bit.
    pub dh_param_gen: u64,
    /// Signing a QUOTE in the quoting enclave (EPID stand-in).
    pub quote_sign: u64,
    /// Verifying a QUOTE signature in the challenger.
    pub quote_verify: u64,

    // --- symmetric cryptography ---
    /// AES-128 key schedule.
    pub aes_key_schedule: u64,
    /// One AES-128 block operation (16 bytes).
    pub aes_block: u64,
    /// One SHA-256 compression (64 bytes).
    pub sha256_block: u64,
    /// One HMAC-SHA256 over a short message (fixed approximation).
    pub hmac_short: u64,

    // --- enclave I/O (Table 2 model) ---
    /// Fixed normal-instruction cost per send batch (syscall path, buffers).
    pub send_base: u64,
    /// Per-packet copy in/out of the enclave.
    pub packet_copy: u64,
    /// SGX instructions per send batch (ocall setup + completion).
    pub io_batch_sgx: u64,
    /// SGX instructions per packet within a batch (exit + resume).
    pub io_packet_sgx: u64,

    // --- switchless transitions (HotCalls-style shared call ring) ---
    /// Normal instructions for the enclave to post one request into the
    /// untrusted shared ring (write args, publish, fence).
    pub switchless_post: u64,
    /// Normal instructions for the host worker to poll, unmarshal and
    /// dispatch one ring request (charged to the enclave's role, as the
    /// paper charges all work on the enclave's behalf).
    pub switchless_poll: u64,
    /// Normal instructions to wake a sleeping worker (futex path),
    /// charged once per asleep-fallback.
    pub switchless_wake: u64,
    /// Normal instructions per spin unit an awake worker burns finding
    /// the ring empty (one poll-head + pause iteration). Charged per
    /// unit of [`crate::TransitionStats::idle_spins`] — the honest cost
    /// of keeping a worker pool hot, which lets an over-provisioned
    /// switchless configuration lose to classic transitions.
    pub switchless_idle_spin: u64,

    // --- enclave memory management ---
    /// Normal instructions per dynamic allocation inside the enclave
    /// (EPC page-fault handling, EACCEPT-style bookkeeping).
    pub alloc_base: u64,
    /// Additional normal instructions per 4 KiB EPC page touched.
    pub alloc_page: u64,
    /// Normal instructions per page evicted to main memory (EWB: encrypt
    /// + MAC a 4 KiB page, plus versioning bookkeeping).
    pub ewb_page: u64,

    // --- misc attestation bookkeeping (Table 1 residuals) ---
    /// Target-enclave attestation base (report generation, intra-attestation
    /// with the quoting enclave, message marshalling).
    pub attest_target_base: u64,
    /// Quoting-enclave base besides the quote signature.
    pub attest_quote_base: u64,
    /// Challenger base besides signature verification.
    pub attest_challenger_base: u64,

    // --- backend profile (enclave-TEE vs VM-TEE crossing shape) ---
    /// TEE-transition instructions charged per direct guest call (an
    /// ecall's EENTER/EEXIT pair on SGX; zero on a VM TEE, where a guest
    /// call is an ordinary function call and only I/O-shaped crossings
    /// VM-exit).
    pub ecall_pair_sgx: u64,
    /// Normal instructions per newly accepted private page (SEV-SNP
    /// PVALIDATE / TDX EACCEPT bookkeeping); zero on SGX, where EPC
    /// paging costs are modelled by `alloc_page`/`ewb_page` instead.
    pub page_accept: u64,
    /// TEE-transition instructions the challenger charges per protocol
    /// leg (entering the challenger enclave plus the message ocall on
    /// SGX; request/response VM exits on a VM TEE).
    pub challenger_entry_sgx: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper()
    }
}

impl CostModel {
    /// The model calibrated to the paper's Tables 1–2 (see module docs).
    pub fn paper() -> Self {
        CostModel {
            sgx_instr_cycles: 10_000,
            cpi_num: 9,
            cpi_den: 5,
            modexp_1024: 112_000_000,
            dh_param_gen: 3_960_000_000,
            quote_sign: 112_000_000,
            quote_verify: 112_000_000,
            aes_key_schedule: 75_600,
            aes_block: 81,
            sha256_block: 300,
            hmac_short: 1_500,
            send_base: 11_750,
            packet_copy: 1_250,
            io_batch_sgx: 4,
            io_packet_sgx: 2,
            switchless_post: 300,
            switchless_poll: 600,
            switchless_wake: 4_000,
            switchless_idle_spin: 60,
            alloc_base: 1_800,
            alloc_page: 3_200,
            ewb_page: 25_000,
            attest_target_base: 154_000_000,
            attest_quote_base: 13_000_000,
            attest_challenger_base: 12_000_000,
            ecall_pair_sgx: 2,
            page_accept: 0,
            challenger_entry_sgx: 4,
        }
    }

    /// A VM-TEE (TDX/SEV-SNP-style) cost profile.
    ///
    /// The application-crypto constants are shared with [`CostModel::paper`]
    /// — the workload does the same work — but the *crossing shape*
    /// differs:
    ///
    /// * a TEE-transition instruction is a VM exit/resume leg (~2 500
    ///   cycles), not a 10 000-cycle EENTER/EEXIT microcode flow;
    /// * direct guest calls pay **no** transition pair
    ///   (`ecall_pair_sgx = 0`): only I/O- and ocall-shaped crossings
    ///   VM-exit, so switchless elision buys proportionally less;
    /// * dynamic memory pays per-page acceptance (PVALIDATE/EACCEPT,
    ///   `page_accept`) instead of EPC eviction ever firing (the guest's
    ///   private memory is sized like ordinary RAM);
    /// * attestation is PSP-style: a cheaper report signature
    ///   (`quote_sign`) plus a second verification for the host-fetched
    ///   endorsement chain (`quote_verify` is charged once per link by
    ///   the evidence verifier), with no in-enclave quoting-enclave
    ///   round trips (`attest_target_base`, `attest_quote_base`).
    pub fn vmtee() -> Self {
        CostModel {
            sgx_instr_cycles: 2_500,
            quote_sign: 45_000_000,
            quote_verify: 50_000_000,
            attest_target_base: 60_000_000,
            attest_quote_base: 5_000_000,
            ecall_pair_sgx: 0,
            page_accept: 2_600,
            challenger_entry_sgx: 2,
            ..Self::paper()
        }
    }

    /// The CPI as a float, for display only — all accounting uses the
    /// exact rational.
    // teenet-analyze: allow-block(float-accounting) -- display-only conversion; cycle totals use the exact rational in cycles()
    pub fn cpi(&self) -> f64 {
        self.cpi_num as f64 / self.cpi_den.max(1) as f64
    }

    /// Cost of a modular exponentiation at `bits` modulus size
    /// (cubic scaling from the calibrated 1024-bit cost), computed in
    /// exact integer arithmetic: `modexp_1024 · bits³ / 1024³`, rounded
    /// to nearest. The widest case (2⁶³-scale base cost at a few thousand
    /// bits) stays far inside u128.
    pub fn modexp(&self, bits: usize) -> u64 {
        const DEN: u128 = 1024 * 1024 * 1024;
        let b = bits as u128;
        let num = self.modexp_1024 as u128 * b * b * b;
        ((num + DEN / 2) / DEN) as u64
    }

    /// Cost of AES-encrypting `len` bytes (excluding key schedule).
    pub fn aes_bytes(&self, len: usize) -> u64 {
        (len.div_ceil(16) as u64) * self.aes_block
    }

    /// Cost of SHA-256 hashing `len` bytes.
    pub fn sha256_bytes(&self, len: usize) -> u64 {
        // One compression per 64-byte block plus one for padding.
        (len as u64 / 64 + 1) * self.sha256_block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_diff() {
        let mut c = Counters::new();
        c.sgx(3);
        c.normal(1000);
        let snap = c;
        c.sgx(2);
        c.normal(500);
        let d = c.since(snap);
        assert_eq!(d.sgx_instr, 2);
        assert_eq!(d.normal_instr, 500);
        let mut m = Counters::new();
        m.merge(c);
        assert_eq!(m, c);
    }

    #[test]
    fn cycle_formula_matches_paper_challenger() {
        // Paper §5: "The challenger enclave consumes 626M cycles" with 8
        // SGX(U) and 348M normal instructions (w/ DH).
        let model = CostModel::paper();
        let c = Counters {
            sgx_instr: 8,
            normal_instr: 348_000_000,
        };
        let cycles = c.cycles(&model);
        // 8 * 10_000 + 1.8 * 348M = 626.48M
        assert_eq!(cycles, 80_000 + 626_400_000);
    }

    #[test]
    fn cycle_formula_matches_paper_remote_platform() {
        // Paper: "the quoting and target enclave [...] consumes 8033M cycles"
        // = (4338M + 125M) * 1.8 + (20 + 17) * 10K ≈ 8033.77M.
        let model = CostModel::paper();
        let c = Counters {
            sgx_instr: 37,
            normal_instr: 4_463_000_000,
        };
        let cycles = c.cycles(&model);
        assert!((8_000_000_000..8_100_000_000).contains(&cycles), "{cycles}");
    }

    #[test]
    fn cycles_exact_above_f64_precision() {
        // 2^53 + 3 normal instructions: f64 cannot represent the count
        // (it rounds to 2^53 + 4), so the old `normal as f64 * 1.8` path
        // was off. Exact rational arithmetic gives the true value:
        // (2^53 + 3) * 9 / 5 = 16_212_958_658_533_791.
        let model = CostModel::paper();
        let c = Counters {
            sgx_instr: 0,
            normal_instr: (1u64 << 53) + 3,
        };
        assert_eq!(c.cycles(&model), 16_212_958_658_533_791);
    }

    #[test]
    fn phase_cycle_totals_are_additive() {
        // Per-phase conversion then summation must equal converting the
        // merged counters — no per-phase truncation drift. Phase counts
        // are replayed-op multiples as the load runner produces them,
        // including counts far above 2^53 where f64 rounding used to make
        // sum-of-phase cycles ≠ cycles-of-sum.
        let model = CostModel::paper();
        let phases = [
            Counters {
                sgx_instr: 12,
                normal_instr: 9_007_199_254_741_000, // > 2^53, ≡ 0 mod 5
            },
            Counters {
                sgx_instr: 7,
                normal_instr: model.aes_key_schedule * 1_000_000_000,
            },
            Counters {
                sgx_instr: 0,
                normal_instr: model.send_base * 123_456_789,
            },
        ];
        let mut merged = Counters::new();
        let mut summed = 0u64;
        for p in &phases {
            merged.merge(*p);
            summed += p.cycles(&model);
        }
        assert_eq!(summed, merged.cycles(&model));
    }

    #[cfg(debug_assertions)]
    #[test]
    fn since_across_reset_trips_debug_assert() {
        let stale = Counters {
            sgx_instr: 5,
            normal_instr: 5,
        };
        let reset = Counters::new();
        assert!(std::panic::catch_unwind(|| reset.since(stale)).is_err());
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn since_across_reset_saturates_in_release() {
        // A stale snapshot (taken before a counter reset) must degrade to
        // zero instead of aborting a release-mode load report.
        let stale = Counters {
            sgx_instr: 5,
            normal_instr: 5,
        };
        let reset = Counters::new();
        assert_eq!(reset.since(stale), Counters::new());
    }

    #[test]
    fn vmtee_profile_differs_only_in_crossing_shape() {
        let paper = CostModel::paper();
        let vm = CostModel::vmtee();
        // Crossings are cheaper and direct guest calls are free.
        assert!(vm.sgx_instr_cycles < paper.sgx_instr_cycles);
        assert_eq!(vm.ecall_pair_sgx, 0);
        assert!(vm.page_accept > 0);
        assert_eq!(paper.page_accept, 0);
        // Application crypto is identical — the workload does the same work.
        assert_eq!(vm.aes_block, paper.aes_block);
        assert_eq!(vm.modexp_1024, paper.modexp_1024);
        assert_eq!(vm.send_base, paper.send_base);
        assert_eq!((vm.cpi_num, vm.cpi_den), (paper.cpi_num, paper.cpi_den));
        // The paper profile carries the calibrated SGX crossing shape.
        assert_eq!(paper.ecall_pair_sgx, 2);
        assert_eq!(paper.challenger_entry_sgx, 4);
    }

    #[test]
    fn modexp_scales_cubically() {
        let m = CostModel::paper();
        assert_eq!(m.modexp(1024), m.modexp_1024);
        assert_eq!(m.modexp(2048), m.modexp_1024 * 8);
        assert!(m.modexp(768) < m.modexp_1024 / 2);
    }

    #[test]
    fn aes_cost_rounds_up_blocks() {
        let m = CostModel::paper();
        assert_eq!(m.aes_bytes(16), m.aes_block);
        assert_eq!(m.aes_bytes(17), 2 * m.aes_block);
        assert_eq!(m.aes_bytes(1500), 94 * m.aes_block);
    }

    #[test]
    fn table2_calibration_single_packet() {
        // Reproduce Table 2's "1 packet w/o crypto ≈ 13K" and "w/ crypto ≈ 97K".
        let m = CostModel::paper();
        let without = m.send_base + m.packet_copy;
        assert!((12_000..14_000).contains(&without), "{without}");
        let with = without + m.aes_key_schedule + m.aes_bytes(1500);
        assert!((95_000..99_000).contains(&with), "{with}");
    }

    #[test]
    fn table2_calibration_batch() {
        // "100 packets w/o crypto ≈ 136K, w/ crypto ≈ 972K; 204 SGX instr".
        let m = CostModel::paper();
        let without = m.send_base + 100 * m.packet_copy;
        assert!((130_000..140_000).contains(&without), "{without}");
        let with = without + m.aes_key_schedule + 100 * m.aes_bytes(1500);
        assert!((950_000..990_000).contains(&with), "{with}");
        let sgx = m.io_batch_sgx + 100 * m.io_packet_sgx;
        assert_eq!(sgx, 204);
    }
}
