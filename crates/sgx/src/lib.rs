#![warn(missing_docs)]
// Enclave-abort hygiene (mirrors the teenet-analyze `enclave-abort`
// rule): non-test code in this crate must surface failures as
// `Result`, never abort. The rare infallible-by-construction sites
// carry a teenet-analyze waiver plus a site-level `#[allow]`.
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented,
        clippy::unreachable
    )
)]

//! # teenet-sgx
//!
//! A functional Intel SGX emulator with instruction/cycle cost accounting —
//! the stand-in for OpenSGX in this reproduction of *"A First Step Towards
//! Leveraging Commodity Trusted Execution Environments for Network
//! Applications"* (HotNets '15).
//!
//! The emulator models the SGX surface the paper relies on:
//!
//! * [`platform::Platform`] — a machine with a device key, an
//!   [`epc::Epc`] (Enclave Page Cache) and a [`quote::QuotingEnclave`].
//! * [`enclave::EnclaveProgram`] — application logic loaded into an
//!   enclave; its [`measurement::Measurement`] (MRENCLAVE) is a SHA-256
//!   digest built through ECREATE/EADD/EEXTEND exactly as §2.1 describes.
//! * [`report`] / [`quote`] — EREPORT/EGETKEY-based local attestation and
//!   QUOTE generation by the quoting enclave, with an EPID-style group key
//!   ([`quote::EpidGroup`]).
//! * [`seal`] — sealed storage under MRENCLAVE/MRSIGNER policies.
//! * [`ocall`] — the untrusted host interface, with Iago-attack sanity
//!   checking as §6 prescribes.
//! * [`cost`] — the calibrated instruction/cycle model that regenerates the
//!   paper's tables (see that module's docs for calibration provenance).
//! * [`tee`] / [`vmtee`] — the multi-backend abstraction: the
//!   [`tee::TeePlatform`] trait every workload deploys against, with the
//!   SGX [`platform::Platform`] and a TDX/SEV-SNP-style
//!   [`vmtee::VmTeePlatform`] as its two implementors.
//!
//! ## Threat model
//!
//! As in the paper (§2.1): all host software is untrusted and can only
//! deny service; enclave state is invisible and tamper-proof. In the
//! emulator this holds *by construction* — host-side code holds no
//! references into enclave state and interacts only via
//! [`platform::Platform::ecall`] / [`ocall::HostCalls`].

pub mod cost;
pub mod enclave;
pub mod epc;
pub mod error;
pub mod keys;
pub mod measurement;
pub mod ocall;
pub mod platform;
pub mod quote;
pub mod report;
pub mod seal;
pub mod switchless;
pub mod tee;
pub mod vmtee;
pub mod wire;

pub use cost::{CostModel, Counters};
pub use enclave::{EnclaveCtx, EnclaveId, EnclaveProgram};
pub use error::{Result, SgxError};
pub use measurement::{measure_image, Measurement, Sigstruct};
pub use ocall::{HostCalls, NullHost};
pub use platform::Platform;
pub use quote::{EpidGroup, Quote, QuotingEnclave};
pub use report::{Report, ReportBody, TargetInfo};
pub use switchless::{SwitchlessConfig, TransitionMode, TransitionStats, WorkerScaling};
pub use tee::{deploy_platform, Evidence, TeeBackend, TeePlatform};
pub use vmtee::{VmEvidence, VmTeePlatform};
