//! The attestation-storm workload as an [`EnclaveService`].
//!
//! One session is one full Figure-1 remote attestation of a target
//! enclave: the challenger's request, the in-enclave REPORT, the quoting
//! enclave's QUOTE, and the challenger's verification. The service runs
//! the real protocol message by message so the calibrated wire sizes are
//! the true ones, not estimates.
//!
//! The profile types ([`WorkProfile`]/[`WorkStep`]) and the generic
//! calibrator live in `teenet-app`; this module only implements the
//! service contract — calibrate by driving [`AttestService`] through
//! [`AppHarness`].

use teenet_app::{
    AppError, EnclaveService, ServiceEnv, StepExecution, StepOutcome, StepRequest, StepSpec,
};
use teenet_crypto::schnorr::{SchnorrGroup, SigningKey};
use teenet_crypto::SecureRng;
use teenet_sgx::cost::Counters;
use teenet_sgx::{
    deploy_platform, EnclaveCtx, EnclaveId, EnclaveProgram, EpidGroup, Report, SgxError,
    SwitchlessConfig, TeePlatform, TransitionMode, TransitionStats,
};

use crate::attest::{AttestConfig, AttestResponse, Challenger};
use crate::error::{Result, TeenetError};
use crate::identity::IdentityPolicy;
use crate::responder::AttestResponder;

pub use teenet_app::{WorkProfile, WorkStep};

/// Minimal attestation-target enclave for calibration.
struct AttestTarget {
    responder: AttestResponder,
}

impl EnclaveProgram for AttestTarget {
    fn code_image(&self) -> Vec<u8> {
        b"load-attest-target-v1".to_vec()
    }
    fn ecall(
        &mut self,
        ctx: &mut EnclaveCtx<'_>,
        fn_id: u64,
        input: &[u8],
    ) -> core::result::Result<Vec<u8>, SgxError> {
        match fn_id {
            0 => self.responder.handle_begin(ctx, input),
            1 => self.responder.handle_finish(ctx, input),
            _ => Err(SgxError::EcallRejected("unknown fn")),
        }
    }
}

struct Deployed {
    platform: Box<dyn TeePlatform>,
    enclave: EnclaveId,
    epid: EpidGroup,
    rng: SecureRng,
}

/// The attestation-storm workload: one Figure-1 remote attestation per
/// session, driven through [`teenet_app::AppHarness`].
pub struct AttestService {
    config: AttestConfig,
    deployed: Option<Deployed>,
}

impl AttestService {
    /// A service attesting a target under `config`.
    pub fn new(config: AttestConfig) -> Self {
        AttestService {
            config,
            deployed: None,
        }
    }

    fn state(&self) -> Result<&Deployed> {
        self.deployed
            .as_ref()
            .ok_or(TeenetError::Protocol("attest service not deployed"))
    }
}

impl Default for AttestService {
    fn default() -> Self {
        AttestService::new(AttestConfig::fast())
    }
}

impl EnclaveService for AttestService {
    type Error = TeenetError;

    fn name(&self) -> &'static str {
        "attest"
    }

    fn describe(&self) -> &'static str {
        "remote attestation storm: one Figure-1 attestation per session"
    }

    fn deploy(&mut self, env: &mut ServiceEnv) -> Result<()> {
        let mut rng = SecureRng::seed_from_u64(env.seed);
        let epid = EpidGroup::new(1, &mut rng).map_err(TeenetError::Sgx)?;
        let mut platform = deploy_platform(env.backend, "load-attest-target", &epid, env.seed)
            .map_err(TeenetError::Sgx)?;
        let author =
            SigningKey::generate(&SchnorrGroup::small(), &mut rng).map_err(TeenetError::Crypto)?;
        let enclave = platform
            .create_signed(
                Box::new(AttestTarget {
                    responder: AttestResponder::new(self.config.clone()),
                }),
                &author,
                1,
            )
            .map_err(TeenetError::Sgx)?;
        self.deployed = Some(Deployed {
            platform,
            enclave,
            epid,
            rng,
        });
        Ok(())
    }

    fn set_transition_mode(
        &mut self,
        mode: TransitionMode,
        switchless: SwitchlessConfig,
    ) -> Result<()> {
        let state = self
            .deployed
            .as_mut()
            .ok_or(TeenetError::Protocol("attest service not deployed"))?;
        let enclave = state.enclave;
        // Configure before switching: entering switchless initialises the
        // worker pool from the configuration in force at that moment.
        state
            .platform
            .configure_switchless(enclave, switchless)
            .map_err(TeenetError::Sgx)?;
        state
            .platform
            .set_transition_mode(enclave, mode)
            .map_err(TeenetError::Sgx)
    }

    /// Setup is the target enclave's load cost alone: the quoting enclave
    /// only works during sessions, and the challenger is unmetered.
    fn setup_counters(&self) -> Result<Counters> {
        let state = self.state()?;
        state
            .platform
            .counters_of(state.enclave)
            .map_err(TeenetError::Sgx)
    }

    /// The server side of an attestation is the target enclave plus its
    /// platform's quoting enclave.
    fn server_counters(&self) -> Result<Counters> {
        let state = self.state()?;
        let mut total = state
            .platform
            .counters_of(state.enclave)
            .map_err(TeenetError::Sgx)?;
        total.merge(state.platform.attestor_counters());
        Ok(total)
    }

    fn transition_stats(&self) -> Result<TransitionStats> {
        let state = self.state()?;
        state
            .platform
            .transition_stats_of(state.enclave)
            .map_err(TeenetError::Sgx)
    }

    fn session_script(&self, _env: &ServiceEnv) -> Result<Vec<StepSpec>> {
        Ok(vec![StepSpec::repeat("attest", 1)])
    }

    fn run_step(
        &mut self,
        _spec: &StepSpec,
        _request: StepRequest,
        env: &mut ServiceEnv,
    ) -> Result<StepOutcome> {
        let config = self.config.clone();
        let state = self
            .deployed
            .as_mut()
            .ok_or(TeenetError::Protocol("attest service not deployed"))?;

        // One real attestation, driven message by message so the wire
        // sizes are the true ones, not estimates.
        let (challenger, request) = Challenger::start(
            IdentityPolicy::AcceptAny,
            config,
            &env.model,
            &mut state.rng,
        )?;
        let request_wire = request.to_bytes();

        let mut begin_input = request_wire.clone();
        begin_input.extend_from_slice(&state.platform.attestation_target_info().mrenclave.0);
        let report_bytes = state
            .platform
            .ecall_nohost(state.enclave, 0, &begin_input)
            .map_err(TeenetError::Sgx)?;
        let report = Report::from_bytes(&report_bytes).map_err(TeenetError::Sgx)?;
        let evidence = state.platform.evidence(&report).map_err(TeenetError::Sgx)?;
        let mut finish_input = request.nonce.to_vec();
        finish_input.extend_from_slice(&evidence.to_bytes());
        let response_wire = state
            .platform
            .ecall_nohost(state.enclave, 1, &finish_input)
            .map_err(TeenetError::Sgx)?;
        let response = AttestResponse::from_bytes(&response_wire)?;
        let outcome = challenger.verify(&response, &state.epid.public_key(), None)?;

        Ok(StepOutcome::Executed(StepExecution {
            request_bytes: request_wire.len(),
            response_bytes: response_wire.len(),
            client: outcome.counters,
        }))
    }
}

impl From<AppError> for TeenetError {
    fn from(e: AppError) -> Self {
        TeenetError::Protocol(e.message())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teenet_app::AppHarness;

    fn calibrate(config: &AttestConfig, seed: u64, mode: TransitionMode) -> WorkProfile {
        AppHarness::new(seed, mode)
            .calibrate(&mut AttestService::new(config.clone()))
            .unwrap()
    }

    #[test]
    fn attest_profile_matches_table1_shape() {
        let profile = calibrate(&AttestConfig::fast(), 42, TransitionMode::Classic);
        assert_eq!(profile.steps.len(), 1);
        let step = &profile.steps[0];
        // With DH the target dominates the challenger (paper: 4463M vs
        // 348M at 1024 bits; the ratio holds at the fast 768-bit group).
        assert!(step.server.normal_instr > 2 * step.client.normal_instr);
        assert!(step.server.sgx_instr > 0);
        // Real wire sizes: request = 34 + |dh share|; response carries a
        // quote, so it is bigger than the request.
        assert_eq!(step.request_bytes, 34 + 96); // 768-bit share
        assert!(step.response_bytes > step.request_bytes);
    }

    #[test]
    fn attest_service_calibrates_on_vmtee() {
        use teenet_sgx::TeeBackend;
        let sgx = calibrate(&AttestConfig::fast(), 7, TransitionMode::Classic);
        let vm = AppHarness::with_backend(7, TransitionMode::Classic, TeeBackend::VmTee)
            .calibrate(&mut AttestService::new(AttestConfig::fast()))
            .unwrap();
        assert_eq!(vm.backend, TeeBackend::VmTee);
        assert_eq!(vm.steps.len(), sgx.steps.len());
        // Same protocol either way; the VM-TEE evidence carries an
        // endorsement chain, so its response is strictly longer.
        assert_eq!(vm.steps[0].request_bytes, sgx.steps[0].request_bytes);
        assert!(vm.steps[0].response_bytes > sgx.steps[0].response_bytes);
    }

    #[test]
    fn no_dh_profile_is_much_cheaper() {
        let with_dh = calibrate(&AttestConfig::fast(), 1, TransitionMode::Classic);
        let config = AttestConfig::no_dh(teenet_crypto::dh::DhGroup::modp768());
        let without = calibrate(&config, 1, TransitionMode::Classic);
        assert!(
            with_dh.steps[0].server.normal_instr > 5 * without.steps[0].server.normal_instr,
            "DH must dominate the target cost"
        );
    }
}
