//! Calibration entry points for the load-generation subsystem
//! (`teenet-load`).
//!
//! A load run does not execute tens of thousands of real protocol sessions
//! — it runs a handful against the real enclaves here, captures each
//! operation's instruction counters and wire sizes as a [`WorkProfile`],
//! and replays that profile at scale on virtual time. The profile types
//! live in this crate (rather than in `teenet-load`) so every application
//! crate can expose a calibration hook without depending on the load
//! driver.

use teenet_crypto::schnorr::{SchnorrGroup, SigningKey};
use teenet_crypto::SecureRng;
use teenet_sgx::cost::{CostModel, Counters};
use teenet_sgx::{
    EnclaveCtx, EnclaveProgram, EpidGroup, Platform, Report, SgxError, TransitionMode,
    TransitionStats,
};

use crate::attest::{AttestConfig, AttestResponse, Challenger};
use crate::error::{Result, TeenetError};
use crate::identity::IdentityPolicy;
use crate::responder::AttestResponder;

/// The measured cost of one client→server exchange within a session.
#[derive(Debug, Clone, Copy)]
pub struct WorkStep {
    /// Step name (stable; surfaces in load reports).
    pub name: &'static str,
    /// Client-side instruction cost.
    pub client: Counters,
    /// Server-side instruction cost.
    pub server: Counters,
    /// Request size on the wire.
    pub request_bytes: usize,
    /// Response size on the wire.
    pub response_bytes: usize,
    /// Server-side enclave boundary crossings during this step.
    pub transitions: TransitionStats,
}

/// A calibrated workload: one-time setup cost plus the per-session step
/// script.
#[derive(Debug, Clone)]
pub struct WorkProfile {
    /// One-time cost (enclave load, provisioning, admission attestations).
    pub setup: Counters,
    /// The steps of one session, in order.
    pub steps: Vec<WorkStep>,
    /// Transition mode the profile was calibrated under.
    pub mode: TransitionMode,
}

/// Minimal attestation-target enclave for calibration.
struct AttestService {
    responder: AttestResponder,
}

impl EnclaveProgram for AttestService {
    fn code_image(&self) -> Vec<u8> {
        b"load-attest-target-v1".to_vec()
    }
    fn ecall(
        &mut self,
        ctx: &mut EnclaveCtx<'_>,
        fn_id: u64,
        input: &[u8],
    ) -> core::result::Result<Vec<u8>, SgxError> {
        match fn_id {
            0 => self.responder.handle_begin(ctx, input),
            1 => self.responder.handle_finish(ctx, input),
            _ => Err(SgxError::EcallRejected("unknown fn")),
        }
    }
}

/// Calibrates the attestation-storm workload: one session is one full
/// Figure-1 remote attestation of a target enclave. Runs the real protocol
/// once and returns its measured counters and true wire sizes.
pub fn calibrate_attest(config: &AttestConfig, seed: u64) -> Result<WorkProfile> {
    calibrate_attest_mode(config, seed, TransitionMode::Classic)
}

/// [`calibrate_attest`] with an explicit transition mode: under
/// [`TransitionMode::Switchless`] the responder's ocalls (nonce echo,
/// chunked response streaming) ride the shared call ring instead of paying
/// EEXIT/EENTER pairs.
pub fn calibrate_attest_mode(
    config: &AttestConfig,
    seed: u64,
    mode: TransitionMode,
) -> Result<WorkProfile> {
    let model = CostModel::paper();
    let mut rng = SecureRng::seed_from_u64(seed);
    let epid = EpidGroup::new(1, &mut rng).map_err(TeenetError::Sgx)?;
    let mut platform = Platform::new("load-attest-target", &epid, seed);
    let author =
        SigningKey::generate(&SchnorrGroup::small(), &mut rng).map_err(TeenetError::Crypto)?;
    let enclave = platform
        .create_signed(
            Box::new(AttestService {
                responder: AttestResponder::new(config.clone()),
            }),
            &author,
            1,
        )
        .map_err(TeenetError::Sgx)?;
    platform
        .set_transition_mode(enclave, mode)
        .map_err(TeenetError::Sgx)?;
    let setup = platform.counters_of(enclave).map_err(TeenetError::Sgx)?;

    // One real attestation, driven message by message so the wire sizes
    // are the true ones, not estimates.
    let (challenger, request) =
        Challenger::start(IdentityPolicy::AcceptAny, config.clone(), &model, &mut rng)?;
    let request_wire = request.to_bytes();
    let target_before = platform.counters_of(enclave).map_err(TeenetError::Sgx)?;
    let transitions_before = platform
        .transition_stats_of(enclave)
        .map_err(TeenetError::Sgx)?;
    let quoting_before = platform.quoting_counters();

    let mut begin_input = request_wire.clone();
    begin_input.extend_from_slice(&platform.quoting_target_info().mrenclave.0);
    let report_bytes = platform
        .ecall_nohost(enclave, 0, &begin_input)
        .map_err(TeenetError::Sgx)?;
    let report = Report::from_bytes(&report_bytes).map_err(TeenetError::Sgx)?;
    let quote = platform.quote(&report).map_err(TeenetError::Sgx)?;
    let mut finish_input = request.nonce.to_vec();
    finish_input.extend_from_slice(&quote.to_bytes());
    let response_wire = platform
        .ecall_nohost(enclave, 1, &finish_input)
        .map_err(TeenetError::Sgx)?;
    let response = AttestResponse::from_bytes(&response_wire)?;
    let outcome = challenger.verify(&response, &epid.public_key(), None)?;

    // The server side of an attestation is the target enclave plus its
    // platform's quoting enclave.
    let mut server = platform
        .counters_of(enclave)
        .map_err(TeenetError::Sgx)?
        .since(target_before);
    server.merge(platform.quoting_counters().since(quoting_before));
    let transitions = platform
        .transition_stats_of(enclave)
        .map_err(TeenetError::Sgx)?
        .since(transitions_before);

    Ok(WorkProfile {
        setup,
        steps: vec![WorkStep {
            name: "attest",
            client: outcome.counters,
            server,
            request_bytes: request_wire.len(),
            response_bytes: response_wire.len(),
            transitions,
        }],
        mode,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attest_profile_matches_table1_shape() {
        let profile = calibrate_attest(&AttestConfig::fast(), 42).unwrap();
        assert_eq!(profile.steps.len(), 1);
        let step = &profile.steps[0];
        // With DH the target dominates the challenger (paper: 4463M vs
        // 348M at 1024 bits; the ratio holds at the fast 768-bit group).
        assert!(step.server.normal_instr > 2 * step.client.normal_instr);
        assert!(step.server.sgx_instr > 0);
        // Real wire sizes: request = 34 + |dh share|; response carries a
        // quote, so it is bigger than the request.
        assert_eq!(step.request_bytes, 34 + 96); // 768-bit share
        assert!(step.response_bytes > step.request_bytes);
    }

    #[test]
    fn calibration_is_deterministic_in_seed() {
        let a = calibrate_attest(&AttestConfig::fast(), 7).unwrap();
        let b = calibrate_attest(&AttestConfig::fast(), 7).unwrap();
        assert_eq!(a.steps[0].server, b.steps[0].server);
        assert_eq!(a.steps[0].client, b.steps[0].client);
        assert_eq!(a.steps[0].response_bytes, b.steps[0].response_bytes);
        assert_eq!(a.setup, b.setup);
    }

    #[test]
    fn switchless_attest_elides_responder_ocalls() {
        let classic = calibrate_attest(&AttestConfig::fast(), 9).unwrap();
        let sw =
            calibrate_attest_mode(&AttestConfig::fast(), 9, TransitionMode::Switchless).unwrap();
        assert!(
            sw.steps[0].server.sgx_instr < classic.steps[0].server.sgx_instr,
            "ring-serviced ocalls must drop SGX instructions"
        );
        assert!(sw.steps[0].transitions.elided > 0);
        assert_eq!(classic.steps[0].transitions.elided, 0);
        assert_eq!(classic.mode, TransitionMode::Classic);
        assert_eq!(sw.mode, TransitionMode::Switchless);
    }

    #[test]
    fn no_dh_profile_is_much_cheaper() {
        let with_dh = calibrate_attest(&AttestConfig::fast(), 1).unwrap();
        let config = AttestConfig::no_dh(teenet_crypto::dh::DhGroup::modp768());
        let without = calibrate_attest(&config, 1).unwrap();
        assert!(
            with_dh.steps[0].server.normal_instr > 5 * without.steps[0].server.normal_instr,
            "DH must dominate the target cost"
        );
    }
}
