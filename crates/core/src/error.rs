//! Error type for the attestation and secure-channel layer.

use core::fmt;
use teenet_crypto::CryptoError;
use teenet_sgx::SgxError;

/// Errors from remote attestation or secure-channel operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TeenetError {
    /// The attested enclave's identity does not satisfy the policy.
    IdentityRejected(&'static str),
    /// The quote's report data does not bind the expected handshake values.
    BindingMismatch,
    /// A certificate check failed.
    CertificateInvalid(&'static str),
    /// A secure-channel message failed authentication or framing.
    ChannelError(&'static str),
    /// A protocol message arrived out of order or malformed.
    Protocol(&'static str),
    /// Underlying SGX emulator error.
    Sgx(SgxError),
    /// Underlying cryptographic error.
    Crypto(CryptoError),
}

impl fmt::Display for TeenetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TeenetError::IdentityRejected(why) => write!(f, "identity rejected: {why}"),
            TeenetError::BindingMismatch => write!(f, "attestation binding mismatch"),
            TeenetError::CertificateInvalid(why) => write!(f, "certificate invalid: {why}"),
            TeenetError::ChannelError(why) => write!(f, "secure channel error: {why}"),
            TeenetError::Protocol(why) => write!(f, "protocol error: {why}"),
            TeenetError::Sgx(e) => write!(f, "sgx error: {e}"),
            TeenetError::Crypto(e) => write!(f, "crypto error: {e}"),
        }
    }
}

impl std::error::Error for TeenetError {}

impl From<SgxError> for TeenetError {
    fn from(e: SgxError) -> Self {
        TeenetError::Sgx(e)
    }
}

impl From<CryptoError> for TeenetError {
    fn from(e: CryptoError) -> Self {
        TeenetError::Crypto(e)
    }
}

/// Result alias.
pub type Result<T> = core::result::Result<T, TeenetError>;
