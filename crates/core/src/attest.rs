//! Remote attestation — the paper's Figure 1 protocol.
//!
//! ```text
//! Challenger enclave            Target enclave          Quoting enclave
//!   1) enclave spec + nonce
//!      (+ DH share)      ───────────▶
//!                               2) EREPORT (binds nonce
//!                                  and DH shares)
//!                               3) REPORT  ───────────▶
//!                                              intra-attestation:
//!                                              EGETKEY, MAC check
//!                               ◀───────────  4) QUOTE (signed)
//!   ◀──────  5..8) QUOTE + target DH share (+ certificate)
//!   9) verify signature, check identity policy,
//!      check binding, derive shared secret
//! ```
//!
//! Cost accounting reproduces Table 1: the challenger pays one DH keygen up
//! front and quote verification + one shared-secret computation at the end;
//! the target pays its attestation base plus (with DH) parameter
//! generation, keygen and the shared secret — the paper measured that "the
//! Diffie-Hellman key exchange takes up 90% of the cycles". (Our DH uses
//! the fixed Oakley group; the parameter-generation cost is charged per the
//! model because the paper's polarssl prototype generated parameters at
//! runtime — see `teenet-sgx::cost` provenance notes.)

use teenet_crypto::dh::{DhGroup, DhKeyPair};
use teenet_crypto::schnorr::VerifyingKey;
use teenet_crypto::sha256::Sha256;
use teenet_crypto::{BigUint, SecureRng};
use teenet_sgx::cost::{CostModel, Counters};
use teenet_sgx::report::{report_data_from, Report, TargetInfo, REPORT_DATA_LEN};
use teenet_sgx::{EnclaveCtx, Evidence};

use crate::channel::SecureChannel;
use crate::error::{Result, TeenetError};
use crate::identity::{IdentityPolicy, SoftwareCertificate};

/// Attestation configuration shared by both sides.
#[derive(Clone)]
pub struct AttestConfig {
    /// Bootstrap a secure channel with an embedded DH exchange.
    pub with_dh: bool,
    /// DH group (paper: 1024-bit).
    pub group: DhGroup,
}

impl Default for AttestConfig {
    fn default() -> Self {
        AttestConfig {
            with_dh: true,
            group: DhGroup::modp1024(),
        }
    }
}

impl AttestConfig {
    /// Fast configuration for tests (768-bit group).
    pub fn fast() -> Self {
        AttestConfig {
            with_dh: true,
            group: DhGroup::modp768(),
        }
    }

    /// Attestation without channel bootstrap (Table 1's "w/o DH" columns).
    pub fn no_dh(group: DhGroup) -> Self {
        AttestConfig {
            with_dh: false,
            group,
        }
    }
}

/// Message 1: the challenger's attestation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestRequest {
    /// Anti-replay nonce.
    pub nonce: [u8; 32],
    /// Challenger's DH public value (empty when `with_dh` is off).
    pub challenger_dh_pub: Vec<u8>,
}

impl AttestRequest {
    /// Wire encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(34 + self.challenger_dh_pub.len());
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&(self.challenger_dh_pub.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.challenger_dh_pub);
        out
    }

    /// Parses the wire encoding.
    pub fn from_bytes(buf: &[u8]) -> Result<Self> {
        if buf.len() < 34 {
            return Err(TeenetError::Protocol("AttestRequest truncated"));
        }
        let nonce: [u8; 32] = buf[..32]
            .try_into()
            .map_err(|_| TeenetError::Protocol("AttestRequest nonce"))?;
        let len = u16::from_le_bytes([buf[32], buf[33]]) as usize;
        if buf.len() != 34 + len {
            return Err(TeenetError::Protocol("AttestRequest length"));
        }
        Ok(AttestRequest {
            nonce,
            challenger_dh_pub: buf[34..].to_vec(),
        })
    }
}

/// Messages 5–8 combined: the target's attestation response.
#[derive(Debug, Clone)]
pub struct AttestResponse {
    /// The signed attestation evidence (an EPID QUOTE on SGX, a
    /// PSP-signed report plus endorsement chain on a VM TEE).
    pub evidence: Evidence,
    /// Target's DH public value (empty when `with_dh` is off).
    pub target_dh_pub: Vec<u8>,
}

impl AttestResponse {
    /// Wire encoding. Byte-identical to the historical quote-carrying
    /// encoding when the evidence is EPID.
    pub fn to_bytes(&self) -> Vec<u8> {
        let evidence = self.evidence.to_bytes();
        let mut out = Vec::with_capacity(4 + evidence.len() + self.target_dh_pub.len());
        out.extend_from_slice(&(evidence.len() as u16).to_le_bytes());
        out.extend_from_slice(&evidence);
        out.extend_from_slice(&(self.target_dh_pub.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.target_dh_pub);
        out
    }

    /// Parses the wire encoding.
    pub fn from_bytes(buf: &[u8]) -> Result<Self> {
        if buf.len() < 2 {
            return Err(TeenetError::Protocol("AttestResponse truncated"));
        }
        let qlen = u16::from_le_bytes([buf[0], buf[1]]) as usize;
        if buf.len() < 2 + qlen + 2 {
            return Err(TeenetError::Protocol("AttestResponse evidence length"));
        }
        let evidence_bytes = buf
            .get(2..2 + qlen)
            .ok_or(TeenetError::Protocol("AttestResponse evidence length"))?;
        let evidence = Evidence::from_bytes(evidence_bytes)?;
        let rest = buf
            .get(2 + qlen..)
            .ok_or(TeenetError::Protocol("AttestResponse evidence length"))?;
        let dlen = u16::from_le_bytes([rest[0], rest[1]]) as usize;
        if rest.len() != 2 + dlen {
            return Err(TeenetError::Protocol("AttestResponse dh length"));
        }
        Ok(AttestResponse {
            evidence,
            target_dh_pub: rest[2..].to_vec(),
        })
    }
}

/// Computes the report data binding the attestation session: a hash of the
/// nonce and both DH shares, embedded in the REPORT by the target so the
/// challenger knows the quoted enclave generated *this* key exchange.
fn binding(nonce: &[u8; 32], challenger_pub: &[u8], target_pub: &[u8]) -> [u8; REPORT_DATA_LEN] {
    let mut h = Sha256::new();
    h.update(b"teenet-attest-binding-v1");
    h.update(nonce);
    h.update(&(challenger_pub.len() as u64).to_le_bytes());
    h.update(challenger_pub);
    h.update(&(target_pub.len() as u64).to_le_bytes());
    h.update(target_pub);
    report_data_from(&h.finalize())
}

/// The challenger's side of remote attestation (runs in the challenger's
/// enclave or trusted context).
pub struct Challenger {
    policy: IdentityPolicy,
    config: AttestConfig,
    nonce: [u8; 32],
    dh: Option<DhKeyPair>,
    /// Instructions spent by the challenger (Table 1's challenger column).
    pub counters: Counters,
    model: CostModel,
}

/// Successful attestation outcome on the challenger side.
///
/// (Not `Debug`: the channel holds key material.)
pub struct AttestOutcome {
    /// The verified identity of the attested enclave.
    pub body: teenet_sgx::ReportBody,
    /// Secure channel to the target (when DH was enabled).
    pub channel: Option<SecureChannel>,
    /// Total instructions the challenger spent (Table 1's challenger
    /// column).
    pub counters: Counters,
}

impl Challenger {
    /// Starts an attestation: produces the state machine and message 1.
    pub fn start(
        policy: IdentityPolicy,
        config: AttestConfig,
        model: &CostModel,
        rng: &mut SecureRng,
    ) -> Result<(Self, AttestRequest)> {
        let mut counters = Counters::new();
        counters.normal(model.attest_challenger_base);
        // The challenger runs in its own enclave: entering it and sending
        // message 1 costs one protocol leg of TEE transitions (four SGX(U)
        // instructions on SGX; a VM TEE charges fewer).
        counters.sgx(model.challenger_entry_sgx);
        let mut nonce = [0u8; 32];
        rng.fill_bytes(&mut nonce);
        let (dh, challenger_dh_pub) = if config.with_dh {
            counters.normal(model.modexp(config.group.bits)); // keygen
            let kp = DhKeyPair::generate(&config.group, rng)?;
            let pubkey = kp.public_bytes();
            (Some(kp), pubkey)
        } else {
            (None, Vec::new())
        };
        Ok((
            Challenger {
                policy,
                config,
                nonce,
                dh,
                counters,
                model: model.clone(),
            },
            AttestRequest {
                nonce,
                challenger_dh_pub,
            },
        ))
    }

    /// Message 9: verifies the response — quote signature, identity policy,
    /// session binding — and derives the shared channel.
    pub fn verify(
        mut self,
        response: &AttestResponse,
        group_public: &VerifyingKey,
        certificate: Option<&SoftwareCertificate>,
    ) -> Result<AttestOutcome> {
        // Receiving messages 5-8 re-enters the challenger enclave.
        self.counters.sgx(self.model.challenger_entry_sgx);
        // Signature check (challenger pays the backend's verification
        // cost: one quote_verify on SGX, two on a VM TEE).
        response
            .evidence
            .verify(group_public, &mut self.counters, &self.model)?;
        // Identity policy.
        self.policy.check(response.evidence.body(), certificate)?;
        // Session binding: the quoted report_data must commit to our nonce
        // and both DH shares.
        let challenger_pub = self
            .dh
            .as_ref()
            .map(|kp| kp.public_bytes())
            .unwrap_or_default();
        let expected = binding(&self.nonce, &challenger_pub, &response.target_dh_pub);
        if expected != response.evidence.body().report_data {
            return Err(TeenetError::BindingMismatch);
        }
        // Channel derivation.
        let channel = match &self.dh {
            Some(kp) => {
                self.counters
                    .normal(self.model.modexp(self.config.group.bits));
                let shared = kp
                    .shared_secret(&BigUint::from_bytes_be(&response.target_dh_pub))
                    .map_err(TeenetError::Crypto)?;
                Some(SecureChannel::from_shared_secret(
                    &shared,
                    &self.nonce,
                    true,
                )?)
            }
            None => None,
        };
        Ok(AttestOutcome {
            body: response.evidence.body().clone(),
            channel,
            counters: self.counters,
        })
    }

    /// Instructions spent so far (for reporting even before `verify`).
    pub fn counters(&self) -> Counters {
        self.counters
    }
}

/// The target's side, split in two because the QUOTE is produced by the
/// quoting enclave between the steps. Both steps run *inside* the target
/// enclave (they take the [`EnclaveCtx`]); the host ferries the REPORT to
/// the QE and the QUOTE back.
pub struct TargetAttestor {
    config: AttestConfig,
    nonce: [u8; 32],
    challenger_pub: Vec<u8>,
    dh: Option<DhKeyPair>,
}

impl TargetAttestor {
    /// Step one (messages 2–3): generate the DH share, EREPORT with the
    /// session binding, hand the REPORT out for quoting.
    pub fn begin(
        ctx: &mut EnclaveCtx<'_>,
        request: &AttestRequest,
        qe_target: TargetInfo,
        config: AttestConfig,
    ) -> Result<(Self, Report)> {
        ctx.charge(ctx.model.attest_target_base);
        let mut rng_seed = [0u8; 32];
        ctx.random(&mut rng_seed);
        let mut rng = SecureRng::from_seed(&rng_seed);
        let (dh, target_pub) = if config.with_dh {
            // The paper's prototype generates DH parameters inside the
            // target — the dominant cost in Table 1's target column.
            ctx.charge(ctx.model.dh_param_gen);
            ctx.charge(ctx.model.modexp(config.group.bits)); // keygen
            let kp = DhKeyPair::generate(&config.group, &mut rng).map_err(TeenetError::Crypto)?;
            let pubkey = kp.public_bytes();
            (Some(kp), pubkey)
        } else {
            (None, Vec::new())
        };
        let data = binding(&request.nonce, &request.challenger_dh_pub, &target_pub);
        let report = ctx.ereport(qe_target, &data);
        Ok((
            TargetAttestor {
                config,
                nonce: request.nonce,
                challenger_pub: request.challenger_dh_pub.clone(),
                dh,
            },
            report,
        ))
    }

    /// Step two (messages 5–8): package the attestation evidence into the
    /// response and derive the target's end of the secure channel.
    pub fn finish(
        self,
        ctx: &mut EnclaveCtx<'_>,
        evidence: Evidence,
    ) -> Result<(AttestResponse, Option<SecureChannel>)> {
        // Derive the seal key under which session state would persist
        // across enclave restarts (one EGETKEY).
        let _seal_key = ctx.egetkey(teenet_sgx::keys::KeyRequest::SealEnclave);
        let (target_dh_pub, channel) = match &self.dh {
            Some(kp) => {
                if self.challenger_pub.is_empty() {
                    return Err(TeenetError::Protocol("challenger sent no DH share"));
                }
                ctx.charge(ctx.model.modexp(self.config.group.bits)); // shared secret
                let shared = kp
                    .shared_secret(&BigUint::from_bytes_be(&self.challenger_pub))
                    .map_err(TeenetError::Crypto)?;
                let channel = SecureChannel::from_shared_secret(&shared, &self.nonce, false)?;
                (kp.public_bytes(), Some(channel))
            }
            None => (Vec::new(), None),
        };
        Ok((
            AttestResponse {
                evidence,
                target_dh_pub,
            },
            channel,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teenet_crypto::schnorr::{SchnorrGroup, SigningKey};
    use teenet_sgx::{
        deploy_platform, EnclaveProgram, EpidGroup, SgxError, TeeBackend, TeePlatform,
    };

    /// Test enclave program implementing the target side of attestation.
    struct Target {
        pending: Option<TargetAttestor>,
        pub channel: Option<SecureChannel>,
        config: AttestConfig,
    }

    impl EnclaveProgram for Target {
        fn code_image(&self) -> Vec<u8> {
            b"attest-target-v1".to_vec()
        }
        fn ecall(
            &mut self,
            ctx: &mut EnclaveCtx<'_>,
            fn_id: u64,
            input: &[u8],
        ) -> teenet_sgx::Result<Vec<u8>> {
            match fn_id {
                // begin: input = AttestRequest ‖ qe measurement (32)
                0 => {
                    let (req_bytes, qe) = input.split_at(input.len() - 32);
                    let request = AttestRequest::from_bytes(req_bytes)
                        .map_err(|_| SgxError::EcallRejected("bad request"))?;
                    let qe_target = TargetInfo {
                        mrenclave: teenet_sgx::Measurement(qe.try_into().expect("32")),
                    };
                    let (attestor, report) =
                        TargetAttestor::begin(ctx, &request, qe_target, self.config.clone())
                            .map_err(|_| SgxError::EcallRejected("begin failed"))?;
                    self.pending = Some(attestor);
                    Ok(report.to_bytes())
                }
                // finish: input = Evidence
                1 => {
                    let evidence = Evidence::from_bytes(input)?;
                    let attestor = self
                        .pending
                        .take()
                        .ok_or(SgxError::EcallRejected("no pending attestation"))?;
                    let (response, channel) = attestor
                        .finish(ctx, evidence)
                        .map_err(|_| SgxError::EcallRejected("finish failed"))?;
                    self.channel = channel;
                    Ok(response.to_bytes())
                }
                // receive a channel message and echo it decrypted+re-encrypted
                2 => {
                    let ch = self
                        .channel
                        .as_mut()
                        .ok_or(SgxError::EcallRejected("no channel"))?;
                    let plain = ch
                        .open(input)
                        .map_err(|_| SgxError::EcallRejected("bad channel msg"))?;
                    let mut reply = b"echo: ".to_vec();
                    reply.extend_from_slice(&plain);
                    Ok(ch.seal(&reply))
                }
                _ => Err(SgxError::EcallRejected("unknown fn")),
            }
        }
    }

    struct World {
        platform: Box<dyn TeePlatform>,
        enclave: teenet_sgx::EnclaveId,
        group_public: VerifyingKey,
        rng: SecureRng,
        model: CostModel,
    }

    fn setup(config: AttestConfig) -> World {
        setup_backend(config, TeeBackend::Sgx)
    }

    fn setup_backend(config: AttestConfig, backend: TeeBackend) -> World {
        let mut rng = SecureRng::seed_from_u64(77);
        let epid = EpidGroup::new(1, &mut rng).unwrap();
        let mut platform = deploy_platform(backend, "target-host", &epid, 3).unwrap();
        let author = SigningKey::generate(&SchnorrGroup::small(), &mut rng).unwrap();
        let enclave = platform
            .create_signed(
                Box::new(Target {
                    pending: None,
                    channel: None,
                    config,
                }),
                &author,
                1,
            )
            .unwrap();
        let model = backend.cost_model();
        World {
            platform,
            enclave,
            group_public: epid.public_key(),
            rng,
            model,
        }
    }

    /// Runs the full Figure-1 flow, returning the challenger outcome.
    fn run_attestation(
        world: &mut World,
        policy: IdentityPolicy,
        config: AttestConfig,
    ) -> Result<AttestOutcome> {
        let (challenger, request) =
            Challenger::start(policy, config, &world.model, &mut world.rng)?;
        // Host ferries msg 1 into the target enclave.
        let mut input = request.to_bytes();
        input.extend_from_slice(&world.platform.attestation_target_info().mrenclave.0);
        let report_bytes = world.platform.ecall_nohost(world.enclave, 0, &input)?;
        let report = Report::from_bytes(&report_bytes)?;
        // Host runs the attestation component (msgs 3–4): the QE on SGX,
        // the PSP on a VM TEE.
        let evidence = world.platform.evidence(&report)?;
        // Host returns evidence to the target (msgs 5–8 assembled inside).
        let response_bytes = world
            .platform
            .ecall_nohost(world.enclave, 1, &evidence.to_bytes())?;
        let response = AttestResponse::from_bytes(&response_bytes)?;
        // Msg 9.
        challenger.verify(&response, &world.group_public, None)
    }

    #[test]
    fn full_attestation_with_channel() {
        let config = AttestConfig::fast();
        let mut world = setup(config.clone());
        let expected = world.platform.measurement_of(world.enclave).unwrap();
        let outcome =
            run_attestation(&mut world, IdentityPolicy::Mrenclave(expected), config).unwrap();
        assert_eq!(outcome.body.mrenclave, expected);
        let mut channel = outcome.channel.expect("channel bootstrapped");
        // Use the channel end-to-end through the enclave.
        let msg = channel.seal(b"hello enclave");
        let reply = world.platform.ecall_nohost(world.enclave, 2, &msg).unwrap();
        assert_eq!(channel.open(&reply).unwrap(), b"echo: hello enclave");
    }

    #[test]
    fn full_attestation_with_channel_on_vmtee() {
        // The same Figure-1 flow against the VM-TEE backend: the PSP's
        // evidence (report signature + endorsement chain) must satisfy the
        // unchanged in-enclave challenger, and the channel must work.
        let config = AttestConfig::fast();
        let mut world = setup_backend(config.clone(), TeeBackend::VmTee);
        let expected = world.platform.measurement_of(world.enclave).unwrap();
        let outcome =
            run_attestation(&mut world, IdentityPolicy::Mrenclave(expected), config).unwrap();
        assert_eq!(outcome.body.mrenclave, expected);
        let mut channel = outcome.channel.expect("channel bootstrapped");
        let msg = channel.seal(b"hello guest");
        let reply = world.platform.ecall_nohost(world.enclave, 2, &msg).unwrap();
        assert_eq!(channel.open(&reply).unwrap(), b"echo: hello guest");
        // The challenger paid the VM-TEE verification shape: two signature
        // checks, cheaper protocol-leg transitions.
        assert!(outcome.counters.normal_instr >= 2 * world.model.quote_verify);
        assert_eq!(world.model.challenger_entry_sgx, 2);
    }

    #[test]
    fn attestation_without_dh_has_no_channel() {
        let config = AttestConfig::no_dh(DhGroup::modp768());
        let mut world = setup(config.clone());
        let outcome = run_attestation(&mut world, IdentityPolicy::AcceptAny, config).unwrap();
        assert!(outcome.channel.is_none());
    }

    #[test]
    fn wrong_identity_rejected() {
        let config = AttestConfig::fast();
        let mut world = setup(config.clone());
        let err = run_attestation(
            &mut world,
            IdentityPolicy::Mrenclave(teenet_sgx::Measurement([0xee; 32])),
            config,
        )
        .map(|_| ())
        .unwrap_err();
        assert!(matches!(err, TeenetError::IdentityRejected(_)));
    }

    #[test]
    fn substituted_dh_share_breaks_binding() {
        // A MITM host replacing the target's DH share is caught because the
        // quoted report_data committed to the genuine share.
        let config = AttestConfig::fast();
        let mut world = setup(config.clone());
        let (challenger, request) = Challenger::start(
            IdentityPolicy::AcceptAny,
            config.clone(),
            &world.model,
            &mut world.rng,
        )
        .unwrap();
        let mut input = request.to_bytes();
        input.extend_from_slice(&world.platform.attestation_target_info().mrenclave.0);
        let report_bytes = world
            .platform
            .ecall_nohost(world.enclave, 0, &input)
            .unwrap();
        let report = Report::from_bytes(&report_bytes).unwrap();
        let evidence = world.platform.evidence(&report).unwrap();
        let response_bytes = world
            .platform
            .ecall_nohost(world.enclave, 1, &evidence.to_bytes())
            .unwrap();
        let mut response = AttestResponse::from_bytes(&response_bytes).unwrap();
        // MITM swaps in its own DH public value.
        let attacker = DhKeyPair::generate(&config.group, &mut world.rng).unwrap();
        response.target_dh_pub = attacker.public_bytes();
        let err = challenger
            .verify(&response, &world.group_public, None)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err, TeenetError::BindingMismatch);
    }

    #[test]
    fn replayed_response_fails_fresh_nonce() {
        // A response captured for one nonce cannot satisfy a new challenge.
        let config = AttestConfig::fast();
        let mut world = setup(config.clone());
        // First, an honest run captured by the adversary.
        let (challenger1, request1) = Challenger::start(
            IdentityPolicy::AcceptAny,
            config.clone(),
            &world.model,
            &mut world.rng,
        )
        .unwrap();
        let mut input = request1.to_bytes();
        input.extend_from_slice(&world.platform.attestation_target_info().mrenclave.0);
        let report_bytes = world
            .platform
            .ecall_nohost(world.enclave, 0, &input)
            .unwrap();
        let report = Report::from_bytes(&report_bytes).unwrap();
        let evidence = world.platform.evidence(&report).unwrap();
        let response_bytes = world
            .platform
            .ecall_nohost(world.enclave, 1, &evidence.to_bytes())
            .unwrap();
        let response = AttestResponse::from_bytes(&response_bytes).unwrap();
        drop(challenger1);
        // Fresh challenge; replayed response must fail.
        let (challenger2, _) = Challenger::start(
            IdentityPolicy::AcceptAny,
            config,
            &world.model,
            &mut world.rng,
        )
        .unwrap();
        let err = challenger2
            .verify(&response, &world.group_public, None)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err, TeenetError::BindingMismatch);
    }

    #[test]
    fn table1_shape_dh_dominates_target() {
        // The DH-enabled target run must dwarf the no-DH run (paper: 154M
        // vs 4338M normal instructions).
        let config_dh = AttestConfig {
            with_dh: true,
            group: DhGroup::modp1024(),
        };
        let mut world = setup(config_dh.clone());
        run_attestation(&mut world, IdentityPolicy::AcceptAny, config_dh).unwrap();
        let with_dh = world.platform.counters_of(world.enclave).unwrap();

        let config_no = AttestConfig::no_dh(DhGroup::modp1024());
        let mut world2 = setup(config_no.clone());
        run_attestation(&mut world2, IdentityPolicy::AcceptAny, config_no).unwrap();
        let without = world2.platform.counters_of(world2.enclave).unwrap();

        assert!(
            with_dh.normal_instr > 20 * without.normal_instr,
            "DH {} vs no-DH {}",
            with_dh.normal_instr,
            without.normal_instr
        );
    }

    #[test]
    fn message_wire_roundtrips() {
        let req = AttestRequest {
            nonce: [7u8; 32],
            challenger_dh_pub: vec![1, 2, 3],
        };
        assert_eq!(AttestRequest::from_bytes(&req.to_bytes()).unwrap(), req);
        assert!(AttestRequest::from_bytes(&[0u8; 10]).is_err());
        let mut long = req.to_bytes();
        long.push(0);
        assert!(AttestRequest::from_bytes(&long).is_err());
    }
}
