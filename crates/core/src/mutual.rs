//! Mutual remote attestation.
//!
//! "The AS-controllers and the inter-domain controller mutually
//! authenticate to verify each others' identities" (§3.1). Mutual
//! attestation is two interleaved runs of the Figure-1 protocol — each
//! side plays challenger once and target once — after which both sides
//! hold two verified identities and a secure channel (from the first run)
//! whose binding both runs share via the transcript.
//!
//! [`mutual_attest`] drives the flow between two platform enclaves that
//! expose [`crate::responder::AttestResponder`] ecalls; the forward
//! channel (A challenging B) is returned for application use.

use teenet_crypto::schnorr::VerifyingKey;
use teenet_crypto::SecureRng;
use teenet_sgx::cost::CostModel;
use teenet_sgx::{EnclaveId, ReportBody, TeePlatform};

use crate::attest::AttestConfig;
use crate::channel::SecureChannel;
use crate::error::Result;
use crate::identity::{IdentityPolicy, SoftwareCertificate};
use crate::responder::{attest_enclave, SessionNonce};

/// Outcome of a mutual attestation between enclaves A and B.
pub struct MutualOutcome {
    /// B's verified identity (from A's challenge).
    pub b_identity: ReportBody,
    /// A's verified identity (from B's challenge).
    pub a_identity: ReportBody,
    /// Channel keyed by A's challenge session (A = initiator side).
    pub channel_ab: Option<SecureChannel>,
    /// Channel keyed by B's challenge session (B = initiator side).
    pub channel_ba: Option<SecureChannel>,
    /// Session nonce of the A→B run (B stored its channel end under it).
    pub nonce_ab: SessionNonce,
    /// Session nonce of the B→A run (A stored its channel end under it).
    pub nonce_ba: SessionNonce,
}

/// Parameters describing one side of a mutual attestation.
pub struct Party<'a> {
    /// The platform hosting this side's enclave (any TEE backend).
    pub platform: &'a mut dyn TeePlatform,
    /// The enclave exposing responder ecalls.
    pub enclave: EnclaveId,
    /// Responder ecall id for *begin*.
    pub begin_fn: u64,
    /// Responder ecall id for *finish*.
    pub finish_fn: u64,
    /// The identity this side requires of the peer.
    pub expects: IdentityPolicy,
    /// Optional certificate backing a `Certified` policy.
    pub certificate: Option<&'a SoftwareCertificate>,
    /// Public key of the attestation group this side's platform quotes
    /// under (what the *peer* uses to verify this side's quotes).
    pub group_public: &'a VerifyingKey,
}

/// Runs mutual attestation between `a` and `b` (both directions of
/// Figure 1). Fails if either side rejects the other.
pub fn mutual_attest(
    a: &mut Party<'_>,
    b: &mut Party<'_>,
    config: AttestConfig,
    model: &CostModel,
    rng: &mut SecureRng,
) -> Result<MutualOutcome> {
    // Direction 1: A challenges B.
    let (outcome_ab, nonce_ab) = attest_enclave(
        a.expects.clone(),
        config.clone(),
        model,
        rng,
        b.platform,
        b.enclave,
        b.begin_fn,
        b.finish_fn,
        b.group_public,
        a.certificate,
    )?;
    // Direction 2: B challenges A.
    let (outcome_ba, nonce_ba) = attest_enclave(
        b.expects.clone(),
        config,
        model,
        rng,
        a.platform,
        a.enclave,
        a.begin_fn,
        a.finish_fn,
        a.group_public,
        b.certificate,
    )?;
    Ok(MutualOutcome {
        b_identity: outcome_ab.body,
        a_identity: outcome_ba.body,
        channel_ab: outcome_ab.channel,
        channel_ba: outcome_ba.channel,
        nonce_ab,
        nonce_ba,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::responder::AttestResponder;
    use teenet_crypto::schnorr::{SchnorrGroup, SigningKey};
    use teenet_sgx::{
        deploy_platform, EnclaveCtx, EnclaveProgram, EpidGroup, SgxError, TeeBackend,
    };

    struct Svc {
        responder: AttestResponder,
        tag: u8,
    }

    impl EnclaveProgram for Svc {
        fn code_image(&self) -> Vec<u8> {
            vec![b's', b'v', b'c', self.tag]
        }
        fn ecall(
            &mut self,
            ctx: &mut EnclaveCtx<'_>,
            fn_id: u64,
            input: &[u8],
        ) -> core::result::Result<Vec<u8>, SgxError> {
            match fn_id {
                0 => self.responder.handle_begin(ctx, input),
                1 => self.responder.handle_finish(ctx, input),
                _ => Err(SgxError::EcallRejected("unknown fn")),
            }
        }
    }

    fn setup(
        tag_a: u8,
        tag_b: u8,
    ) -> (
        Box<dyn TeePlatform>,
        EnclaveId,
        Box<dyn TeePlatform>,
        EnclaveId,
        SecureRng,
        VerifyingKey,
    ) {
        let mut rng = SecureRng::seed_from_u64(tag_a as u64 * 251 + tag_b as u64);
        let epid = EpidGroup::new(1, &mut rng).unwrap();
        let author = SigningKey::generate(&SchnorrGroup::small(), &mut rng).unwrap();
        let mut pa = deploy_platform(
            TeeBackend::Sgx,
            &format!("mutual-a-{tag_a}-{tag_b}"),
            &epid,
            1,
        )
        .unwrap();
        let mut pb = deploy_platform(
            TeeBackend::Sgx,
            &format!("mutual-b-{tag_a}-{tag_b}"),
            &epid,
            2,
        )
        .unwrap();
        let ea = pa
            .create_signed(
                Box::new(Svc {
                    responder: AttestResponder::new(AttestConfig::fast()),
                    tag: tag_a,
                }),
                &author,
                1,
            )
            .unwrap();
        let eb = pb
            .create_signed(
                Box::new(Svc {
                    responder: AttestResponder::new(AttestConfig::fast()),
                    tag: tag_b,
                }),
                &author,
                1,
            )
            .unwrap();
        let key = epid.public_key();
        (pa, ea, pb, eb, rng, key)
    }

    #[test]
    fn mutual_attestation_succeeds_and_channels_work() {
        let (mut pa, ea, mut pb, eb, mut rng, gk) = setup(1, 2);
        let ma = pa.measurement_of(ea).unwrap();
        let mb = pb.measurement_of(eb).unwrap();
        let model = CostModel::paper();
        let outcome = mutual_attest(
            &mut Party {
                platform: pa.as_mut(),
                enclave: ea,
                begin_fn: 0,
                finish_fn: 1,
                expects: IdentityPolicy::Mrenclave(mb),
                certificate: None,
                group_public: &gk,
            },
            &mut Party {
                platform: pb.as_mut(),
                enclave: eb,
                begin_fn: 0,
                finish_fn: 1,
                expects: IdentityPolicy::Mrenclave(ma),
                certificate: None,
                group_public: &gk,
            },
            AttestConfig::fast(),
            &model,
            &mut rng,
        )
        .unwrap();
        assert_eq!(outcome.a_identity.mrenclave, ma);
        assert_eq!(outcome.b_identity.mrenclave, mb);
        assert!(outcome.channel_ab.is_some());
        assert!(outcome.channel_ba.is_some());
        assert_ne!(outcome.nonce_ab, outcome.nonce_ba);
    }

    #[test]
    fn mutual_attestation_fails_if_either_side_lies() {
        let (mut pa, ea, mut pb, eb, mut rng, gk) = setup(3, 4);
        let ma = pa.measurement_of(ea).unwrap();
        let model = CostModel::paper();
        // A expects the wrong identity of B.
        let result = mutual_attest(
            &mut Party {
                platform: pa.as_mut(),
                enclave: ea,
                begin_fn: 0,
                finish_fn: 1,
                expects: IdentityPolicy::Mrenclave(teenet_sgx::Measurement([0xcc; 32])),
                certificate: None,
                group_public: &gk,
            },
            &mut Party {
                platform: pb.as_mut(),
                enclave: eb,
                begin_fn: 0,
                finish_fn: 1,
                expects: IdentityPolicy::Mrenclave(ma),
                certificate: None,
                group_public: &gk,
            },
            AttestConfig::fast(),
            &model,
            &mut rng,
        );
        assert!(result.is_err());
    }
}
