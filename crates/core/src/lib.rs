#![warn(missing_docs)]

//! # teenet
//!
//! The core library of the reproduction of *"A First Step Towards
//! Leveraging Commodity Trusted Execution Environments for Network
//! Applications"* (HotNets '15): remote attestation with secure-channel
//! bootstrap, identity policies and software certificates, and the
//! attestation accounting behind the paper's Table 3.
//!
//! ## The attestation flow (paper Figure 1)
//!
//! A [`attest::Challenger`] issues an [`attest::AttestRequest`] carrying a
//! nonce and (optionally) a Diffie–Hellman share. Inside the target
//! enclave, [`attest::TargetAttestor::begin`] generates the target share,
//! binds both shares and the nonce into the EREPORT data, and emits a
//! REPORT; the host ferries it to the platform's quoting enclave, which
//! signs a QUOTE under the EPID-style group key.
//! [`attest::TargetAttestor::finish`] assembles the
//! [`attest::AttestResponse`] and derives the target's
//! [`channel::SecureChannel`]; [`attest::Challenger::verify`] checks the
//! quote signature, the [`identity::IdentityPolicy`], and the session
//! binding, then derives the matching channel end.
//!
//! The substrates live in sibling crates: `teenet-sgx` (the SGX emulator
//! with the calibrated cost model), `teenet-netsim` (deterministic network
//! simulation), `teenet-tls` (the record protocol for the middlebox case
//! study). The case studies — SDN inter-domain routing, Tor, middleboxes —
//! are `teenet-interdomain`, `teenet-tor` and `teenet-mbox`.

pub mod attest;
pub mod channel;
pub mod driver;
pub mod error;
pub mod fmt;
pub mod identity;
pub mod mutual;
pub mod responder;

pub use teenet_app::ledger;

pub use attest::{
    AttestConfig, AttestOutcome, AttestRequest, AttestResponse, Challenger, TargetAttestor,
};
pub use channel::SecureChannel;
pub use driver::{AttestService, WorkProfile, WorkStep};
pub use error::{Result, TeenetError};
pub use identity::{IdentityPolicy, SoftwareCertificate};
pub use ledger::{AttestKind, AttestLedger};
pub use mutual::{mutual_attest, MutualOutcome, Party};
pub use responder::{attest_enclave, AttestResponder, SessionNonce};
