//! Reusable target-side attestation plumbing and a host-side flow driver.
//!
//! Every case study has enclaves that answer attestation requests (the
//! inter-domain controller, SGX onion routers, directory authorities,
//! middleboxes). [`AttestResponder`] is the state they embed: it keeps the
//! pending [`TargetAttestor`]s and the established channels, keyed by the
//! challenger's nonce. [`attest_enclave`] is the matching host-side driver
//! that ferries the four messages between a challenger and a platform
//! enclave exposing the two responder ecalls.

use std::collections::HashMap;

use teenet_crypto::schnorr::VerifyingKey;
use teenet_crypto::SecureRng;
use teenet_sgx::cost::CostModel;
use teenet_sgx::report::TargetInfo;
use teenet_sgx::{EnclaveCtx, EnclaveId, Evidence, Measurement, Report, SgxError, TeePlatform};

use crate::attest::{
    AttestConfig, AttestOutcome, AttestRequest, AttestResponse, Challenger, TargetAttestor,
};
use crate::channel::SecureChannel;
use crate::error::{Result, TeenetError};
use crate::identity::{IdentityPolicy, SoftwareCertificate};

/// Session nonce type (the challenger's anti-replay nonce doubles as the
/// session key).
pub type SessionNonce = [u8; 32];

/// Target-side attestation state an enclave program embeds.
pub struct AttestResponder {
    config: AttestConfig,
    pending: HashMap<SessionNonce, TargetAttestor>,
    /// Channels established with challengers, keyed by session nonce.
    pub channels: HashMap<SessionNonce, SecureChannel>,
}

impl AttestResponder {
    /// A responder answering under `config`.
    pub fn new(config: AttestConfig) -> Self {
        AttestResponder {
            config,
            pending: HashMap::new(),
            channels: HashMap::new(),
        }
    }

    /// Ecall handler for the *begin* step.
    ///
    /// `input` = serialized [`AttestRequest`] ‖ attestation-target
    /// measurement (32 bytes — the QE on SGX, the PSP on a VM TEE);
    /// returns the serialized REPORT for the host to ferry to it.
    pub fn handle_begin(
        &mut self,
        ctx: &mut EnclaveCtx<'_>,
        input: &[u8],
    ) -> core::result::Result<Vec<u8>, SgxError> {
        if input.len() < 32 + 34 {
            return Err(SgxError::EcallRejected("short attest-begin input"));
        }
        let (req_bytes, qe) = input.split_at(input.len() - 32);
        let request = AttestRequest::from_bytes(req_bytes)
            .map_err(|_| SgxError::EcallRejected("bad AttestRequest"))?;
        let qe_target = TargetInfo {
            mrenclave: Measurement(
                qe.try_into()
                    .map_err(|_| SgxError::EcallRejected("bad QE measurement"))?,
            ),
        };
        // Message 1 arrived over the network: the enclave pulls it in via
        // an ocall (the host already marshalled it into `input`).
        ctx.ocall("recv", &[]);
        let (attestor, report) =
            TargetAttestor::begin(ctx, &request, qe_target, self.config.clone())
                .map_err(|_| SgxError::EcallRejected("attest begin failed"))?;
        self.pending.insert(request.nonce, attestor);
        // Message 3: ship the REPORT to the quoting enclave.
        let bytes = report.to_bytes();
        ctx.ocall("send", &bytes);
        Ok(bytes)
    }

    /// Ecall handler for the *finish* step.
    ///
    /// `input` = session nonce (32 bytes) ‖ serialized [`Evidence`];
    /// returns the serialized [`AttestResponse`] and stores the channel
    /// under the nonce.
    pub fn handle_finish(
        &mut self,
        ctx: &mut EnclaveCtx<'_>,
        input: &[u8],
    ) -> core::result::Result<Vec<u8>, SgxError> {
        if input.len() < 32 {
            return Err(SgxError::EcallRejected("short attest-finish input"));
        }
        let (nonce, evidence_bytes) = input.split_at(32);
        let nonce: SessionNonce = nonce
            .try_into()
            .map_err(|_| SgxError::EcallRejected("bad session nonce"))?;
        let evidence = Evidence::from_bytes(evidence_bytes)?;
        let attestor = self
            .pending
            .remove(&nonce)
            .ok_or(SgxError::EcallRejected("no pending attestation"))?;
        // Message 4 (the evidence) arrives from the attestation component.
        ctx.ocall("recv", &[]);
        let (response, channel) = attestor
            .finish(ctx, evidence)
            .map_err(|_| SgxError::EcallRejected("attest finish failed"))?;
        if let Some(channel) = channel {
            self.channels.insert(nonce, channel);
        }
        // Messages 5-8: the response travels back to the challenger in
        // four protocol messages (Figure 1), each an enclave send.
        let bytes = response.to_bytes();
        for chunk in bytes.chunks(bytes.len().div_ceil(4).max(1)) {
            ctx.ocall("send", chunk);
        }
        Ok(bytes)
    }

    /// Mutable access to an established channel.
    pub fn channel_mut(
        &mut self,
        nonce: &SessionNonce,
    ) -> core::result::Result<&mut SecureChannel, SgxError> {
        self.channels
            .get_mut(nonce)
            .ok_or(SgxError::EcallRejected("unknown attestation session"))
    }
}

/// Drives a full remote attestation of `enclave` on `platform` from the
/// challenger side, using the enclave's `begin_fn`/`finish_fn` responder
/// ecalls. Returns the outcome and the session nonce (the key under which
/// the target stored its channel end).
#[allow(clippy::too_many_arguments)]
pub fn attest_enclave(
    policy: IdentityPolicy,
    config: AttestConfig,
    model: &CostModel,
    rng: &mut SecureRng,
    platform: &mut dyn TeePlatform,
    enclave: EnclaveId,
    begin_fn: u64,
    finish_fn: u64,
    group_public: &VerifyingKey,
    certificate: Option<&SoftwareCertificate>,
) -> Result<(AttestOutcome, SessionNonce)> {
    let (challenger, request) = Challenger::start(policy, config, model, rng)?;
    let nonce = request.nonce;
    let mut begin_input = request.to_bytes();
    begin_input.extend_from_slice(&platform.attestation_target_info().mrenclave.0);
    let report_bytes = platform
        .ecall_nohost(enclave, begin_fn, &begin_input)
        .map_err(TeenetError::Sgx)?;
    let report = Report::from_bytes(&report_bytes).map_err(TeenetError::Sgx)?;
    let evidence = platform.evidence(&report).map_err(TeenetError::Sgx)?;
    let mut finish_input = nonce.to_vec();
    finish_input.extend_from_slice(&evidence.to_bytes());
    let response_bytes = platform
        .ecall_nohost(enclave, finish_fn, &finish_input)
        .map_err(TeenetError::Sgx)?;
    let response = AttestResponse::from_bytes(&response_bytes)?;
    let outcome = challenger.verify(&response, group_public, certificate)?;
    Ok((outcome, nonce))
}

#[cfg(test)]
mod tests {
    use super::*;
    use teenet_crypto::schnorr::{SchnorrGroup, SigningKey};
    use teenet_sgx::{deploy_platform, EnclaveProgram, EpidGroup, TeeBackend};

    /// Minimal enclave exposing the responder ecalls plus an echo over the
    /// channel.
    struct Service {
        responder: AttestResponder,
    }

    impl EnclaveProgram for Service {
        fn code_image(&self) -> Vec<u8> {
            b"responder-service-v1".to_vec()
        }
        fn ecall(
            &mut self,
            ctx: &mut EnclaveCtx<'_>,
            fn_id: u64,
            input: &[u8],
        ) -> core::result::Result<Vec<u8>, SgxError> {
            match fn_id {
                0 => self.responder.handle_begin(ctx, input),
                1 => self.responder.handle_finish(ctx, input),
                2 => {
                    let (nonce, msg) = input.split_at(32);
                    let nonce: SessionNonce = nonce.try_into().expect("32");
                    let ch = self.responder.channel_mut(&nonce)?;
                    let plain = ch
                        .open(msg)
                        .map_err(|_| SgxError::EcallRejected("bad msg"))?;
                    Ok(ch.seal(&plain))
                }
                _ => Err(SgxError::EcallRejected("unknown fn")),
            }
        }
    }

    fn run_responder_flow(backend: TeeBackend) {
        let mut rng = SecureRng::seed_from_u64(5);
        let epid = EpidGroup::new(1, &mut rng).unwrap();
        let mut platform = deploy_platform(backend, "svc", &epid, 9).unwrap();
        let author = SigningKey::generate(&SchnorrGroup::small(), &mut rng).unwrap();
        let enclave = platform
            .create_signed(
                Box::new(Service {
                    responder: AttestResponder::new(AttestConfig::fast()),
                }),
                &author,
                1,
            )
            .unwrap();
        let model = backend.cost_model();
        let (outcome, nonce) = attest_enclave(
            IdentityPolicy::Mrenclave(platform.measurement_of(enclave).unwrap()),
            AttestConfig::fast(),
            &model,
            &mut rng,
            platform.as_mut(),
            enclave,
            0,
            1,
            &epid.public_key(),
            None,
        )
        .unwrap();
        let mut channel = outcome.channel.unwrap();
        let mut input = nonce.to_vec();
        input.extend_from_slice(&channel.seal(b"ping"));
        let reply = platform.ecall_nohost(enclave, 2, &input).unwrap();
        assert_eq!(channel.open(&reply).unwrap(), b"ping");
    }

    #[test]
    fn responder_flow_end_to_end() {
        run_responder_flow(TeeBackend::Sgx);
    }

    #[test]
    fn responder_flow_end_to_end_on_vmtee() {
        run_responder_flow(TeeBackend::VmTee);
    }

    #[test]
    fn responder_rejects_unknown_session() {
        let mut rng = SecureRng::seed_from_u64(6);
        let epid = EpidGroup::new(1, &mut rng).unwrap();
        let mut platform = deploy_platform(TeeBackend::Sgx, "svc", &epid, 9).unwrap();
        let author = SigningKey::generate(&SchnorrGroup::small(), &mut rng).unwrap();
        let enclave = platform
            .create_signed(
                Box::new(Service {
                    responder: AttestResponder::new(AttestConfig::fast()),
                }),
                &author,
                1,
            )
            .unwrap();
        let mut input = [9u8; 32].to_vec();
        input.extend_from_slice(b"junk quote");
        assert!(platform.ecall_nohost(enclave, 1, &input).is_err());
        assert!(platform.ecall_nohost(enclave, 2, &[0u8; 40]).is_err());
    }

    #[test]
    fn wrong_expected_identity_fails_in_driver() {
        let mut rng = SecureRng::seed_from_u64(7);
        let epid = EpidGroup::new(1, &mut rng).unwrap();
        let mut platform = deploy_platform(TeeBackend::Sgx, "svc", &epid, 9).unwrap();
        let author = SigningKey::generate(&SchnorrGroup::small(), &mut rng).unwrap();
        let enclave = platform
            .create_signed(
                Box::new(Service {
                    responder: AttestResponder::new(AttestConfig::fast()),
                }),
                &author,
                1,
            )
            .unwrap();
        let model = CostModel::paper();
        let result = attest_enclave(
            IdentityPolicy::Mrenclave(Measurement([0xaa; 32])),
            AttestConfig::fast(),
            &model,
            &mut rng,
            platform.as_mut(),
            enclave,
            0,
            1,
            &epid.public_key(),
            None,
        );
        assert!(matches!(
            result.map(|_| ()),
            Err(TeenetError::IdentityRejected(_))
        ));
    }
}
