//! Paper-style number formatting for the table harnesses.
//!
//! The paper reports instruction counts as "154M", "13K", "4338M"; the
//! benches print the same units so the reproduction reads side by side
//! with the original tables.

/// Formats an instruction count the way the paper's tables do.
///
/// ≥ 1M → "NM" (rounded), ≥ 1K → "NK" (rounded), else the plain number.
pub fn instr(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{}M", (n + 500_000) / 1_000_000)
    } else if n >= 1_000 {
        format!("{}K", (n + 500) / 1_000)
    } else {
        n.to_string()
    }
}

/// Formats a cycle count in millions with one decimal ("626.5M").
pub fn cycles(n: u64) -> String {
    format!("{:.1}M", n as f64 / 1e6)
}

/// Formats a relative overhead as a percentage ("82%").
pub fn overhead_pct(with: u64, without: u64) -> String {
    if without == 0 {
        return "n/a".to_owned();
    }
    let pct = (with as f64 - without as f64) / without as f64 * 100.0;
    format!("{pct:.0}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instr_units() {
        assert_eq!(instr(0), "0");
        assert_eq!(instr(999), "999");
        assert_eq!(instr(13_000), "13K");
        assert_eq!(instr(13_499), "13K");
        assert_eq!(instr(154_000_000), "154M");
        assert_eq!(instr(4_338_200_000), "4338M");
        assert_eq!(instr(972_000), "972K");
    }

    #[test]
    fn cycles_format() {
        assert_eq!(cycles(626_480_000), "626.5M");
    }

    #[test]
    fn overhead() {
        assert_eq!(overhead_pct(135, 74), "82%");
        assert_eq!(overhead_pct(24, 13), "85%");
        assert_eq!(overhead_pct(100, 0), "n/a");
    }
}
