//! Enclave identity policies and software certificates.
//!
//! The paper's deployment assumptions (§3.2): "the Tor source code is
//! extensively verified by the community, [...] and the Tor foundation
//! publishes a signed certificate of legitimate software that contains the
//! identities". [`SoftwareCertificate`] is that artifact; an
//! [`IdentityPolicy`] is what a challenger checks a quoted identity
//! against.

use teenet_crypto::schnorr::{Signature, SigningKey, VerifyingKey};
use teenet_crypto::SecureRng;
use teenet_sgx::{Measurement, ReportBody};

use crate::error::{Result, TeenetError};

/// What a challenger requires of the attested enclave.
#[derive(Debug, Clone)]
pub enum IdentityPolicy {
    /// Exact code identity (deterministic build of agreed source, §3.1).
    Mrenclave(Measurement),
    /// Any code signed by this author, at or above a minimum version.
    Mrsigner {
        /// Required author identity.
        mrsigner: Measurement,
        /// Minimum security version.
        min_svn: u16,
    },
    /// Any identity listed in a foundation certificate.
    Certified {
        /// The foundation's verification key.
        authority: VerifyingKey,
    },
    /// Accept anything (testing / measurement-only flows).
    AcceptAny,
}

impl IdentityPolicy {
    /// Checks a quoted report body against this policy.
    ///
    /// `certificate` must be supplied for [`IdentityPolicy::Certified`].
    pub fn check(
        &self,
        body: &ReportBody,
        certificate: Option<&SoftwareCertificate>,
    ) -> Result<()> {
        match self {
            IdentityPolicy::Mrenclave(expected) => {
                if body.mrenclave == *expected {
                    Ok(())
                } else {
                    Err(TeenetError::IdentityRejected("MRENCLAVE mismatch"))
                }
            }
            IdentityPolicy::Mrsigner { mrsigner, min_svn } => {
                if body.mrsigner != *mrsigner {
                    Err(TeenetError::IdentityRejected("MRSIGNER mismatch"))
                } else if body.isv_svn < *min_svn {
                    Err(TeenetError::IdentityRejected("security version too old"))
                } else {
                    Ok(())
                }
            }
            IdentityPolicy::Certified { authority } => {
                let cert =
                    certificate.ok_or(TeenetError::CertificateInvalid("certificate required"))?;
                cert.verify(authority)?;
                if cert.identities.contains(&body.mrenclave) {
                    Ok(())
                } else {
                    Err(TeenetError::IdentityRejected("identity not certified"))
                }
            }
            IdentityPolicy::AcceptAny => Ok(()),
        }
    }
}

/// A foundation-signed list of legitimate software identities.
#[derive(Debug, Clone)]
pub struct SoftwareCertificate {
    /// Descriptive name ("tor-0.4.x", "interdomain-controller-v1", …).
    pub name: String,
    /// Certified MRENCLAVE values.
    pub identities: Vec<Measurement>,
    /// Monotonic certificate serial (revocation = publish higher serial).
    pub serial: u64,
    /// Foundation signature over name, serial and identities.
    pub signature: Signature,
}

impl SoftwareCertificate {
    fn message(name: &str, serial: u64, identities: &[Measurement]) -> Vec<u8> {
        let mut msg = Vec::with_capacity(32 + name.len() + identities.len() * 32);
        msg.extend_from_slice(b"SOFTWARE-CERT");
        msg.extend_from_slice(&(name.len() as u32).to_le_bytes());
        msg.extend_from_slice(name.as_bytes());
        msg.extend_from_slice(&serial.to_le_bytes());
        for id in identities {
            msg.extend_from_slice(&id.0);
        }
        msg
    }

    /// Issues a certificate signed by the foundation's key.
    pub fn issue(
        name: &str,
        serial: u64,
        identities: Vec<Measurement>,
        foundation: &SigningKey,
        rng: &mut SecureRng,
    ) -> Result<Self> {
        let msg = Self::message(name, serial, &identities);
        let signature = foundation.sign(&msg, rng)?;
        Ok(SoftwareCertificate {
            name: name.to_owned(),
            identities,
            serial,
            signature,
        })
    }

    /// Verifies the foundation signature.
    pub fn verify(&self, authority: &VerifyingKey) -> Result<()> {
        let msg = Self::message(&self.name, self.serial, &self.identities);
        authority
            .verify(&msg, &self.signature)
            .map_err(|_| TeenetError::CertificateInvalid("signature"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teenet_crypto::schnorr::SchnorrGroup;
    use teenet_sgx::report::report_data_from;

    fn m(b: u8) -> Measurement {
        Measurement([b; 32])
    }

    fn body(mrenclave: u8, mrsigner: u8, svn: u16) -> ReportBody {
        ReportBody {
            mrenclave: m(mrenclave),
            mrsigner: m(mrsigner),
            isv_svn: svn,
            report_data: report_data_from(b""),
        }
    }

    fn foundation() -> (SigningKey, SecureRng) {
        let mut rng = SecureRng::seed_from_u64(1);
        let key = SigningKey::generate(&SchnorrGroup::small(), &mut rng).unwrap();
        (key, rng)
    }

    #[test]
    fn mrenclave_policy() {
        let p = IdentityPolicy::Mrenclave(m(1));
        assert!(p.check(&body(1, 9, 0), None).is_ok());
        assert!(p.check(&body(2, 9, 0), None).is_err());
    }

    #[test]
    fn mrsigner_policy_with_svn() {
        let p = IdentityPolicy::Mrsigner {
            mrsigner: m(9),
            min_svn: 3,
        };
        assert!(p.check(&body(1, 9, 3), None).is_ok());
        assert!(
            p.check(&body(2, 9, 7), None).is_ok(),
            "any code, same signer"
        );
        assert!(p.check(&body(1, 9, 2), None).is_err(), "svn rollback");
        assert!(p.check(&body(1, 8, 5), None).is_err(), "wrong signer");
    }

    #[test]
    fn certificate_roundtrip_and_policy() {
        let (key, mut rng) = foundation();
        let cert =
            SoftwareCertificate::issue("tor-1.0", 1, vec![m(1), m(2)], &key, &mut rng).unwrap();
        cert.verify(&key.verifying_key()).unwrap();
        let p = IdentityPolicy::Certified {
            authority: key.verifying_key(),
        };
        assert!(p.check(&body(1, 0, 0), Some(&cert)).is_ok());
        assert!(p.check(&body(2, 0, 0), Some(&cert)).is_ok());
        assert!(p.check(&body(3, 0, 0), Some(&cert)).is_err());
        assert!(p.check(&body(1, 0, 0), None).is_err(), "cert required");
    }

    #[test]
    fn tampered_certificate_rejected() {
        let (key, mut rng) = foundation();
        let mut cert =
            SoftwareCertificate::issue("tor-1.0", 1, vec![m(1)], &key, &mut rng).unwrap();
        cert.identities.push(m(66)); // attacker adds their own identity
        assert!(cert.verify(&key.verifying_key()).is_err());
        let p = IdentityPolicy::Certified {
            authority: key.verifying_key(),
        };
        assert!(p.check(&body(66, 0, 0), Some(&cert)).is_err());
    }

    #[test]
    fn certificate_from_wrong_authority_rejected() {
        let (key, mut rng) = foundation();
        let imposter = SigningKey::generate(&SchnorrGroup::small(), &mut rng).unwrap();
        let cert =
            SoftwareCertificate::issue("tor-1.0", 1, vec![m(1)], &imposter, &mut rng).unwrap();
        let p = IdentityPolicy::Certified {
            authority: key.verifying_key(),
        };
        assert!(p.check(&body(1, 0, 0), Some(&cert)).is_err());
    }

    #[test]
    fn accept_any_accepts() {
        assert!(IdentityPolicy::AcceptAny
            .check(&body(9, 9, 0), None)
            .is_ok());
    }
}
