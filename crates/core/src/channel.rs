//! Secure channels bootstrapped during remote attestation.
//!
//! "As part of remote attestation, two remote enclaves can bootstrap a
//! secure channel by performing a Diffie-Hellman key exchange" (paper
//! §2.2). The shared secret feeds HKDF to produce one key pair per
//! direction; messages are AES-128-CTR encrypted and HMAC-authenticated
//! with per-direction sequence numbers (replay/reorder detection).

use teenet_crypto::aes::Aes128;
use teenet_crypto::ct::ct_eq;
use teenet_crypto::hkdf;
use teenet_crypto::hmac::{HmacSha256, TAG_LEN};

use crate::error::{Result, TeenetError};

struct Direction {
    enc_key: [u8; 16],
    mac_key: [u8; 32],
    seq: u64,
}

impl Direction {
    fn derive(prk: &[u8; 32], label: &[u8]) -> Result<Self> {
        let mut enc_key = [0u8; 16];
        let mut mac_key = [0u8; 32];
        hkdf::expand(prk, &[label, b"-enc"].concat(), &mut enc_key).map_err(TeenetError::Crypto)?;
        hkdf::expand(prk, &[label, b"-mac"].concat(), &mut mac_key).map_err(TeenetError::Crypto)?;
        Ok(Direction {
            enc_key,
            mac_key,
            seq: 0,
        })
    }

    fn mac(&self, seq: u64, ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let mut mac = HmacSha256::new(&self.mac_key);
        mac.update(&seq.to_be_bytes());
        mac.update(ciphertext);
        mac.finalize()
    }
}

/// An authenticated, encrypted, ordered message channel between two
/// attested enclaves.
///
/// ```
/// use teenet::channel::SecureChannel;
/// // Both sides hold the DH shared secret from remote attestation.
/// let shared = b"shared secret from the attestation DH exchange";
/// let mut challenger = SecureChannel::from_shared_secret(shared, b"nonce", true).unwrap();
/// let mut target = SecureChannel::from_shared_secret(shared, b"nonce", false).unwrap();
/// let wire = challenger.seal(b"private policy data");
/// assert_eq!(target.open(&wire).unwrap(), b"private policy data");
/// ```
pub struct SecureChannel {
    send: Direction,
    recv: Direction,
}

impl SecureChannel {
    /// Derives a channel from the attestation DH shared secret.
    ///
    /// `initiator` must be `true` on the challenger side and `false` on the
    /// target side so the directional keys line up. `context` binds the
    /// channel to the attestation session (e.g. the nonce).
    pub fn from_shared_secret(shared: &[u8], context: &[u8], initiator: bool) -> Result<Self> {
        let prk = hkdf::extract(context, shared);
        let a = Direction::derive(&prk, b"initiator")?;
        let b = Direction::derive(&prk, b"responder")?;
        Ok(if initiator {
            SecureChannel { send: a, recv: b }
        } else {
            SecureChannel { send: b, recv: a }
        })
    }

    /// Encrypts and authenticates `plaintext` as the next outbound message.
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let seq = self.send.seq;
        self.send.seq += 1;
        // teenet-analyze: allow(enclave-abort) -- key is a fixed 16-byte direction key derived at session setup
        let cipher = Aes128::new(&self.send.enc_key).expect("16-byte key");
        let mut nonce = [0u8; 16];
        nonce[..8].copy_from_slice(&seq.to_be_bytes());
        let mut ciphertext = plaintext.to_vec();
        cipher.ctr_apply(&nonce, &mut ciphertext);
        let tag = self.send.mac(seq, &ciphertext);
        let mut out = Vec::with_capacity(ciphertext.len() + TAG_LEN);
        out.extend_from_slice(&ciphertext);
        out.extend_from_slice(&tag);
        out
    }

    /// Verifies and decrypts the next inbound message.
    pub fn open(&mut self, message: &[u8]) -> Result<Vec<u8>> {
        if message.len() < TAG_LEN {
            return Err(TeenetError::ChannelError("message truncated"));
        }
        let (ciphertext, tag) = message.split_at(message.len() - TAG_LEN);
        let seq = self.recv.seq;
        let expected = self.recv.mac(seq, ciphertext);
        if !ct_eq(&expected, tag) {
            return Err(TeenetError::ChannelError("MAC mismatch"));
        }
        self.recv.seq += 1;
        // teenet-analyze: allow(enclave-abort) -- key is a fixed 16-byte direction key derived at session setup
        let cipher = Aes128::new(&self.recv.enc_key).expect("16-byte key");
        let mut nonce = [0u8; 16];
        nonce[..8].copy_from_slice(&seq.to_be_bytes());
        let mut plaintext = ciphertext.to_vec();
        cipher.ctr_apply(&nonce, &mut plaintext);
        Ok(plaintext)
    }

    /// Messages sent so far.
    pub fn sent_count(&self) -> u64 {
        self.send.seq
    }

    /// Messages received so far.
    pub fn received_count(&self) -> u64 {
        self.recv.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (SecureChannel, SecureChannel) {
        let shared = b"the attestation shared secret";
        (
            SecureChannel::from_shared_secret(shared, b"ctx", true).unwrap(),
            SecureChannel::from_shared_secret(shared, b"ctx", false).unwrap(),
        )
    }

    #[test]
    fn duplex_roundtrip() {
        let (mut a, mut b) = pair();
        let m = a.seal(b"policies: confidential");
        assert_eq!(b.open(&m).unwrap(), b"policies: confidential");
        let m = b.open(&a.seal(b"second")).unwrap();
        assert_eq!(m, b"second");
        let m = b.seal(b"routes back");
        assert_eq!(a.open(&m).unwrap(), b"routes back");
    }

    #[test]
    fn ciphertext_is_not_plaintext() {
        let (mut a, _) = pair();
        let m = a.seal(b"very secret policy data");
        assert!(!m.windows(6).any(|w| w == b"secret"));
    }

    #[test]
    fn replay_rejected() {
        let (mut a, mut b) = pair();
        let m = a.seal(b"once");
        b.open(&m).unwrap();
        assert!(b.open(&m).is_err());
    }

    #[test]
    fn reorder_rejected() {
        let (mut a, mut b) = pair();
        let m1 = a.seal(b"one");
        let m2 = a.seal(b"two");
        assert!(b.open(&m2).is_err());
        assert_eq!(b.open(&m1).unwrap(), b"one");
        assert_eq!(b.open(&m2).unwrap(), b"two");
    }

    #[test]
    fn tamper_rejected() {
        let (mut a, mut b) = pair();
        let mut m = a.seal(b"integrity");
        m[0] ^= 1;
        assert!(b.open(&m).is_err());
    }

    #[test]
    fn wrong_context_cannot_talk() {
        let shared = b"same secret";
        let mut a = SecureChannel::from_shared_secret(shared, b"ctx-1", true).unwrap();
        let mut b = SecureChannel::from_shared_secret(shared, b"ctx-2", false).unwrap();
        let m = a.seal(b"hello");
        assert!(b.open(&m).is_err());
    }

    #[test]
    fn same_role_cannot_talk() {
        let shared = b"same secret";
        let mut a = SecureChannel::from_shared_secret(shared, b"ctx", true).unwrap();
        let mut b = SecureChannel::from_shared_secret(shared, b"ctx", true).unwrap();
        let m = a.seal(b"hello");
        assert!(b.open(&m).is_err(), "both initiators → key mismatch");
    }

    #[test]
    fn counts_track() {
        let (mut a, mut b) = pair();
        assert_eq!(a.sent_count(), 0);
        let m = a.seal(b"x");
        assert_eq!(a.sent_count(), 1);
        b.open(&m).unwrap();
        assert_eq!(b.received_count(), 1);
    }
}
