//! ChaCha20 stream cipher (RFC 7539).
//!
//! Used as an alternative record cipher (for the cipher-suite ablation
//! benchmark) and as the core of [`crate::rng::SecureRng`].

use crate::error::CryptoError;
use crate::Result;

/// ChaCha20 key size in bytes.
pub const KEY_LEN: usize = 32;
/// ChaCha20 nonce size in bytes (RFC 7539 96-bit nonce).
pub const NONCE_LEN: usize = 12;

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte ChaCha20 block for the given key/nonce/counter.
pub fn block(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[0] = 0x61707865;
    state[1] = 0x3320646e;
    state[2] = 0x79622d32;
    state[3] = 0x6b206574;
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[i * 4],
            nonce[i * 4 + 1],
            nonce[i * 4 + 2],
            nonce[i * 4 + 3],
        ]);
    }
    let initial = state;
    for _ in 0..10 {
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = state[i].wrapping_add(initial[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Applies the ChaCha20 keystream to `data` in place (encrypt == decrypt),
/// starting at block `counter`.
pub fn apply(key: &[u8], nonce: &[u8], counter: u32, data: &mut [u8]) -> Result<()> {
    let key: &[u8; KEY_LEN] = key.try_into().map_err(|_| CryptoError::InvalidLength {
        what: "ChaCha20 key",
        got: key.len(),
        expected: KEY_LEN,
    })?;
    let nonce: &[u8; NONCE_LEN] = nonce.try_into().map_err(|_| CryptoError::InvalidLength {
        what: "ChaCha20 nonce",
        got: nonce.len(),
        expected: NONCE_LEN,
    })?;
    let mut ctr = counter;
    for chunk in data.chunks_mut(64) {
        let ks = block(key, nonce, ctr);
        for (d, k) in chunk.iter_mut().zip(ks.iter()) {
            *d ^= k;
        }
        ctr = ctr.wrapping_add(1);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 7539 §2.3.2 block function test vector.
    #[test]
    fn rfc7539_block() {
        let key: [u8; 32] =
            unhex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = unhex("000000090000004a00000000").try_into().unwrap();
        let out = block(&key, &nonce, 1);
        assert_eq!(
            out.to_vec(),
            unhex(
                "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
                 d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
            )
        );
    }

    // RFC 7539 §2.4.2 encryption test vector.
    #[test]
    fn rfc7539_encrypt() {
        let key = unhex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
        let nonce = unhex("000000000000004a00000000");
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it."
            .to_vec();
        apply(&key, &nonce, 1, &mut data).unwrap();
        assert_eq!(
            data[..32].to_vec(),
            unhex("6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b")
        );
        // Round trip.
        // teenet-analyze: allow(seal-nonce-reuse) -- round-trip against the RFC 7539 vector: decryption requires the same nonce by definition
        apply(&key, &nonce, 1, &mut data).unwrap();
        assert!(data.starts_with(b"Ladies and Gentlemen"));
    }

    #[test]
    fn rejects_bad_lengths() {
        let mut data = [0u8; 4];
        assert!(apply(&[0u8; 31], &[0u8; 12], 0, &mut data).is_err());
        assert!(apply(&[0u8; 32], &[0u8; 11], 0, &mut data).is_err());
    }

    #[test]
    fn counter_advances_across_blocks() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let mut long = vec![0u8; 128];
        apply(&key, &nonce, 0, &mut long).unwrap();
        // Second 64-byte block must equal a fresh application at counter 1.
        let mut second = vec![0u8; 64];
        // teenet-analyze: allow(seal-nonce-reuse) -- the test checks counter advancement, which needs the same (key, nonce) keystream at two offsets
        apply(&key, &nonce, 1, &mut second).unwrap();
        assert_eq!(&long[64..], &second[..]);
    }
}
