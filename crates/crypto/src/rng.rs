//! Deterministic ChaCha20-based CSPRNG.
//!
//! Every source of randomness in the workspace flows through [`SecureRng`]
//! seeded explicitly, so all experiments (topologies, key generation, fault
//! injection) are bit-for-bit reproducible — a requirement for reproducing
//! the paper's instruction-count tables.

use crate::chacha20;

/// A seedable, deterministic cryptographically-strong PRNG.
///
/// Output is the ChaCha20 keystream under a SHA-256-derived key; the stream
/// position advances monotonically and never repeats for a given seed.
#[derive(Clone)]
pub struct SecureRng {
    key: [u8; 32],
    nonce: [u8; 12],
    counter: u32,
    buffer: [u8; 64],
    used: usize,
}

impl SecureRng {
    /// Creates an RNG from an arbitrary-length seed.
    pub fn from_seed(seed: &[u8]) -> Self {
        let key = crate::sha256::sha256(seed);
        SecureRng {
            key,
            nonce: [0u8; 12],
            counter: 0,
            buffer: [0u8; 64],
            used: 64, // force refill on first use
        }
    }

    /// Convenience constructor from a `u64` seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self::from_seed(&seed.to_le_bytes())
    }

    /// Derives an independent child RNG labelled by `label`.
    ///
    /// Children with distinct labels produce independent streams; the parent
    /// stream is not perturbed.
    pub fn fork(&self, label: &[u8]) -> Self {
        let mut seed = Vec::with_capacity(32 + label.len());
        seed.extend_from_slice(&self.key);
        seed.extend_from_slice(label);
        Self::from_seed(&seed)
    }

    fn refill(&mut self) {
        self.buffer = chacha20::block(&self.key, &self.nonce, self.counter);
        self.counter = self.counter.checked_add(1).unwrap_or_else(|| {
            // Counter exhausted (2^32 blocks = 256 GiB): roll the nonce.
            let mut n = u64::from_le_bytes(self.nonce[..8].try_into().expect("8 bytes"));
            n = n.wrapping_add(1);
            self.nonce[..8].copy_from_slice(&n.to_le_bytes());
            0
        });
        self.used = 0;
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut written = 0;
        while written < dest.len() {
            if self.used == 64 {
                self.refill();
            }
            let take = (dest.len() - written).min(64 - self.used);
            dest[written..written + take]
                .copy_from_slice(&self.buffer[self.used..self.used + take]);
            self.used += take;
            written += take;
        }
    }

    /// Returns a uniformly random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        self.fill_bytes(&mut buf);
        u64::from_le_bytes(buf)
    }

    /// Returns a uniformly random `u32`.
    pub fn next_u32(&mut self) -> u32 {
        let mut buf = [0u8; 4];
        self.fill_bytes(&mut buf);
        u32::from_le_bytes(buf)
    }

    /// Returns a uniformly random value in `[0, bound)` (Lemire-style
    /// rejection to avoid modulo bias). `bound` must be nonzero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be nonzero");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = (r as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// Fisher–Yates shuffles a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(slice.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SecureRng::seed_from_u64(42);
        let mut b = SecureRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SecureRng::seed_from_u64(1);
        let mut b = SecureRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_is_independent() {
        let parent = SecureRng::seed_from_u64(7);
        let mut c1 = parent.fork(b"a");
        let mut c2 = parent.fork(b"b");
        let mut c1_again = parent.fork(b"a");
        assert_ne!(c1.next_u64(), c2.next_u64());
        let mut c1_fresh = parent.fork(b"a");
        assert_eq!(c1_again.next_u64(), c1_fresh.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SecureRng::seed_from_u64(9);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..50 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = SecureRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_across_block_boundary() {
        let mut rng = SecureRng::seed_from_u64(3);
        let mut big = [0u8; 200];
        rng.fill_bytes(&mut big);
        // Compare with byte-at-a-time drain of an identical RNG.
        let mut rng2 = SecureRng::seed_from_u64(3);
        for (i, &expected) in big.iter().enumerate() {
            let mut one = [0u8; 1];
            rng2.fill_bytes(&mut one);
            assert_eq!(one[0], expected, "byte {i}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SecureRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SecureRng::seed_from_u64(6);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut rng = SecureRng::seed_from_u64(8);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        let v = [1, 2, 3];
        assert!(v.contains(rng.choose(&v).unwrap()));
    }
}
