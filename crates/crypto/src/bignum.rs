//! Arbitrary-precision unsigned integers.
//!
//! This is the arithmetic substrate under [`crate::dh`] and
//! [`crate::schnorr`]. Numbers are stored as little-endian `u64` limbs with
//! no leading zero limbs (canonical form). The two performance-critical
//! paths are schoolbook multiplication and modular exponentiation; the
//! latter uses Montgomery multiplication (CIOS) for odd moduli, which keeps
//! 1024-bit DH usable even in debug builds, and falls back to
//! divide-and-reduce square-and-multiply for even moduli.

use crate::error::CryptoError;
use crate::Result;
use core::cmp::Ordering;
use core::fmt;

/// An arbitrary-precision unsigned integer.
///
/// Invariant: `limbs` has no trailing (most-significant) zero limbs; zero is
/// represented by an empty limb vector.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Constructs from a single `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Constructs from big-endian bytes (as found in wire formats and RFCs).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut chunk_iter = bytes.rchunks(8);
        for chunk in &mut chunk_iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Serialises to big-endian bytes with no leading zeros (empty for 0).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zeros of the most-significant limb.
                let skip = (limb.leading_zeros() / 8) as usize;
                out.extend_from_slice(&bytes[skip..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serialises to exactly `len` big-endian bytes, left-padding with zeros.
    ///
    /// Returns an error if the value does not fit.
    pub fn to_bytes_be_padded(&self, len: usize) -> Result<Vec<u8>> {
        let raw = self.to_bytes_be();
        if raw.len() > len {
            return Err(CryptoError::InvalidLength {
                what: "padded integer",
                got: raw.len(),
                expected: len,
            });
        }
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        Ok(out)
    }

    /// Parses a hexadecimal string (no `0x` prefix; whitespace ignored).
    pub fn from_hex(s: &str) -> Result<Self> {
        let mut nibbles = Vec::with_capacity(s.len());
        for c in s.chars() {
            if c.is_whitespace() {
                continue;
            }
            nibbles.push(
                c.to_digit(16)
                    .ok_or(CryptoError::InvalidParameter("non-hex digit"))? as u8,
            );
        }
        let mut bytes = Vec::with_capacity(nibbles.len() / 2 + 1);
        // Left-pad odd-length strings with a zero nibble.
        let mut iter = nibbles.iter();
        if nibbles.len() % 2 == 1 {
            bytes.push(*iter.next().expect("non-empty"));
        }
        while let (Some(hi), Some(lo)) = (iter.next(), iter.next()) {
            bytes.push((hi << 4) | lo);
        }
        Ok(Self::from_bytes_be(&bytes))
    }

    /// Renders as lowercase hexadecimal ("0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let bytes = self.to_bytes_be();
        let mut s = String::with_capacity(bytes.len() * 2);
        for (i, b) in bytes.iter().enumerate() {
            if i == 0 {
                // No leading zero nibble.
                if b >> 4 != 0 {
                    s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
                }
                s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
            } else {
                s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
                s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
            }
        }
        s
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is 1.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True iff the value is even (0 counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for the value 0).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (little-endian bit order; out-of-range bits are 0).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &l) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = l.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self - other`; errors if `other > self`.
    pub fn checked_sub(&self, other: &BigUint) -> Result<BigUint> {
        if self.cmp_to(other) == Ordering::Less {
            return Err(CryptoError::InvalidParameter("subtraction underflow"));
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs: out };
        n.normalize();
        Ok(n)
    }

    /// Total-order comparison.
    pub fn cmp_to(&self, other: &BigUint) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Schoolbook multiplication `self * other`.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() {
            return Self::zero();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Division with remainder: returns `(self / divisor, self % divisor)`.
    ///
    /// Implements Knuth's Algorithm D on 64-bit limbs with 128-bit trial
    /// quotient estimation.
    pub fn div_rem(&self, divisor: &BigUint) -> Result<(BigUint, BigUint)> {
        if divisor.is_zero() {
            return Err(CryptoError::DivisionByZero);
        }
        match self.cmp_to(divisor) {
            Ordering::Less => return Ok((Self::zero(), self.clone())),
            Ordering::Equal => return Ok((Self::one(), Self::zero())),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0];
            let mut q = vec![0u64; self.limbs.len()];
            let mut rem = 0u128;
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 64) | self.limbs[i] as u128;
                q[i] = (cur / d as u128) as u64;
                rem = cur % d as u128;
            }
            let mut quotient = BigUint { limbs: q };
            quotient.normalize();
            return Ok((quotient, BigUint::from_u64(rem as u64)));
        }

        // Normalise so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().expect("nonzero").leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;
        let mut un = u.limbs.clone();
        un.push(0); // u has m+n+1 limbs now
        let vn = &v.limbs;
        let v_top = vn[n - 1];
        let v_next = vn[n - 2];
        let mut q = vec![0u64; m + 1];

        for j in (0..=m).rev() {
            // Estimate q_hat from the top two limbs of the current remainder.
            let num = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut q_hat = num / v_top as u128;
            let mut r_hat = num % v_top as u128;
            while q_hat >= 1u128 << 64
                || q_hat * v_next as u128 > ((r_hat << 64) | un[j + n - 2] as u128)
            {
                q_hat -= 1;
                r_hat += v_top as u128;
                if r_hat >= 1u128 << 64 {
                    break;
                }
            }
            // Multiply-subtract q_hat * v from u[j..j+n+1].
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = q_hat * vn[i] as u128 + carry;
                carry = p >> 64;
                let t = un[j + i] as i128 - (p as u64) as i128 - borrow;
                un[j + i] = t as u64;
                borrow = if t < 0 { 1 } else { 0 };
            }
            let t = un[j + n] as i128 - carry as i128 - borrow;
            un[j + n] = t as u64;

            if t < 0 {
                // q_hat was one too large; add v back.
                q_hat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = un[j + i] as u128 + vn[i] as u128 + carry;
                    un[j + i] = s as u64;
                    carry = s >> 64;
                }
                un[j + n] = (un[j + n] as u128).wrapping_add(carry) as u64;
            }
            q[j] = q_hat as u64;
        }

        let mut quotient = BigUint { limbs: q };
        quotient.normalize();
        let mut rem = BigUint {
            limbs: un[..n].to_vec(),
        };
        rem.normalize();
        Ok((quotient, rem.shr(shift)))
    }

    /// `self mod modulus`.
    pub fn rem(&self, modulus: &BigUint) -> Result<BigUint> {
        Ok(self.div_rem(modulus)?.1)
    }

    /// Modular addition `(self + other) mod m`. Inputs must already be `< m`.
    pub fn mod_add(&self, other: &BigUint, m: &BigUint) -> Result<BigUint> {
        let s = self.add(other);
        if s.cmp_to(m) == Ordering::Less {
            Ok(s)
        } else {
            s.checked_sub(m)
        }
    }

    /// Modular subtraction `(self - other) mod m`. Inputs must be `< m`.
    pub fn mod_sub(&self, other: &BigUint, m: &BigUint) -> Result<BigUint> {
        if self.cmp_to(other) != Ordering::Less {
            self.checked_sub(other)
        } else {
            self.add(m).checked_sub(other)
        }
    }

    /// Modular multiplication `(self * other) mod m`.
    pub fn mod_mul(&self, other: &BigUint, m: &BigUint) -> Result<BigUint> {
        self.mul(other).rem(m)
    }

    /// Modular exponentiation `self^exp mod modulus`.
    ///
    /// Uses Montgomery multiplication (CIOS) for odd moduli — the common
    /// case for DH and Schnorr primes — and a generic square-and-multiply
    /// with explicit reduction otherwise.
    pub fn modexp(&self, exp: &BigUint, modulus: &BigUint) -> Result<BigUint> {
        if modulus.is_zero() {
            return Err(CryptoError::DivisionByZero);
        }
        if modulus.is_one() {
            return Ok(Self::zero());
        }
        if exp.is_zero() {
            return Ok(Self::one());
        }
        let base = self.rem(modulus)?;
        if base.is_zero() {
            return Ok(Self::zero());
        }
        if modulus.is_even() {
            return base.modexp_generic(exp, modulus);
        }
        let mont = Montgomery::new(modulus);
        Ok(mont.modexp(&base, exp))
    }

    fn modexp_generic(&self, exp: &BigUint, modulus: &BigUint) -> Result<BigUint> {
        let mut result = Self::one();
        let mut base = self.clone();
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                result = result.mod_mul(&base, modulus)?;
            }
            if i + 1 < exp.bit_len() {
                base = base.mod_mul(&base, modulus)?;
            }
        }
        Ok(result)
    }

    /// Modular inverse via the extended Euclidean algorithm.
    ///
    /// Returns `self^-1 mod m`, or an error if `gcd(self, m) != 1`.
    pub fn mod_inv(&self, m: &BigUint) -> Result<BigUint> {
        if m.is_zero() {
            return Err(CryptoError::DivisionByZero);
        }
        // Extended Euclid with values tracked as (coefficient, negative?) to
        // stay in unsigned arithmetic.
        let mut r0 = m.clone();
        let mut r1 = self.rem(m)?;
        if r1.is_zero() {
            return Err(CryptoError::InvalidParameter("no modular inverse"));
        }
        let mut t0 = (BigUint::zero(), false);
        let mut t1 = (BigUint::one(), false);
        while !r1.is_zero() {
            let (q, r) = r0.div_rem(&r1)?;
            // t2 = t0 - q * t1 (tracking sign manually)
            let qt = q.mul(&t1.0);
            let t2 = match (t0.1, t1.1) {
                (false, false) => {
                    if t0.0.cmp_to(&qt) != Ordering::Less {
                        (t0.0.checked_sub(&qt)?, false)
                    } else {
                        (qt.checked_sub(&t0.0)?, true)
                    }
                }
                (false, true) => (t0.0.add(&qt), false),
                (true, false) => (t0.0.add(&qt), true),
                (true, true) => {
                    if qt.cmp_to(&t0.0) != Ordering::Less {
                        (qt.checked_sub(&t0.0)?, false)
                    } else {
                        (t0.0.checked_sub(&qt)?, true)
                    }
                }
            };
            t0 = t1;
            t1 = t2;
            r0 = r1;
            r1 = r;
        }
        if !r0.is_one() {
            return Err(CryptoError::InvalidParameter("no modular inverse"));
        }
        let (coeff, neg) = t0;
        let inv = if neg {
            m.checked_sub(&coeff.rem(m)?)?.rem(m)?
        } else {
            coeff.rem(m)?
        };
        Ok(inv)
    }

    /// Miller–Rabin probabilistic primality test with `rounds` random
    /// witnesses drawn from `fill`.
    ///
    /// A composite survives one round with probability ≤ 1/4, so 16 rounds
    /// give a false-positive bound of 2^-32 — ample for validating the
    /// built-in group parameters (the safe-prime property the Schnorr
    /// construction rests on).
    pub fn is_probable_prime(&self, rounds: u32, mut fill: impl FnMut(&mut [u8])) -> Result<bool> {
        // Small cases and even numbers.
        if self.cmp_to(&BigUint::from_u64(2)) == Ordering::Less {
            return Ok(false);
        }
        if *self == BigUint::from_u64(2) || *self == BigUint::from_u64(3) {
            return Ok(true);
        }
        if self.is_even() {
            return Ok(false);
        }
        // Quick trial division by small primes.
        for &p in &[3u64, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47] {
            let d = BigUint::from_u64(p);
            if *self == d {
                return Ok(true);
            }
            if self.rem(&d)?.is_zero() {
                return Ok(false);
            }
        }
        // Write n-1 = d * 2^r with d odd.
        let n_minus_1 = self.checked_sub(&BigUint::one())?;
        let mut d = n_minus_1.clone();
        let mut r = 0usize;
        while d.is_even() {
            d = d.shr(1);
            r += 1;
        }
        let two = BigUint::from_u64(2);
        let upper = self.checked_sub(&BigUint::from_u64(3))?; // witnesses in [2, n-2]
        'witness: for _ in 0..rounds {
            let a = BigUint::random_below(&upper, &mut fill)?.add(&two);
            let mut x = a.modexp(&d, self)?;
            if x.is_one() || x == n_minus_1 {
                continue 'witness;
            }
            for _ in 0..r.saturating_sub(1) {
                x = x.mod_mul(&x, self)?;
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return Ok(false);
        }
        Ok(true)
    }

    /// Generates a uniformly random integer in `[0, bound)` using rejection
    /// sampling from `fill` (a closure that fills a byte slice with random
    /// bytes, e.g. from [`crate::rng::SecureRng`]).
    pub fn random_below(bound: &BigUint, mut fill: impl FnMut(&mut [u8])) -> Result<BigUint> {
        if bound.is_zero() {
            return Err(CryptoError::InvalidParameter("random bound of zero"));
        }
        let bits = bound.bit_len();
        let bytes = bits.div_ceil(8);
        let top_mask = if bits.is_multiple_of(8) {
            0xff
        } else {
            (1u8 << (bits % 8)) - 1
        };
        let mut buf = vec![0u8; bytes];
        loop {
            fill(&mut buf);
            buf[0] &= top_mask;
            let candidate = BigUint::from_bytes_be(&buf);
            if candidate.cmp_to(bound) == Ordering::Less {
                return Ok(candidate);
            }
        }
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_to(other)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Montgomery-form modular arithmetic context for an odd modulus.
///
/// Precomputes `n' = -n^-1 mod 2^64` and `R^2 mod n`, then performs
/// exponentiation entirely in Montgomery form using the CIOS multiplication
/// algorithm.
struct Montgomery {
    n: Vec<u64>,
    n_prime: u64,
    r2: Vec<u64>,
}

impl Montgomery {
    fn new(modulus: &BigUint) -> Self {
        debug_assert!(!modulus.is_even() && !modulus.is_zero());
        let n = modulus.limbs.clone();
        // n' = -n^{-1} mod 2^64 by Newton iteration on the low limb.
        let n0 = n[0];
        let mut inv = 1u64;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        let n_prime = inv.wrapping_neg();
        // R^2 mod n where R = 2^(64 * len).
        let r2 = BigUint::one()
            .shl(n.len() * 64 * 2)
            .rem(modulus)
            .expect("modulus nonzero")
            .limbs;
        Montgomery { n, n_prime, r2 }
    }

    /// CIOS Montgomery multiplication: returns `a * b * R^-1 mod n`.
    ///
    /// `a` and `b` are length-`len` limb slices (zero-padded), output too.
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let len = self.n.len();
        let mut t = vec![0u64; len + 2];
        for &ai in &a[..len] {
            // t += ai * b
            let mut carry = 0u128;
            for j in 0..len {
                let s = t[j] as u128 + ai as u128 * b[j] as u128 + carry;
                t[j] = s as u64;
                carry = s >> 64;
            }
            let s = t[len] as u128 + carry;
            t[len] = s as u64;
            t[len + 1] = (s >> 64) as u64;
            // m = t[0] * n' mod 2^64 ; t += m * n ; t >>= 64
            let m = t[0].wrapping_mul(self.n_prime);
            let mut carry = (t[0] as u128 + m as u128 * self.n[0] as u128) >> 64;
            for j in 1..len {
                let s = t[j] as u128 + m as u128 * self.n[j] as u128 + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = t[len] as u128 + carry;
            t[len - 1] = s as u64;
            t[len] = t[len + 1].wrapping_add((s >> 64) as u64);
            t[len + 1] = 0;
        }
        // Conditional final subtraction. When the overflow limb is set the
        // borrow out of the subtraction is absorbed by the implicit
        // 2^(64*len) bit, so a borrow is expected exactly then.
        let mut out = t[..len].to_vec();
        let overflow = t[len] != 0;
        if overflow || ge_limbs(&out, &self.n) {
            let borrow = sub_limbs_in_place(&mut out, &self.n);
            debug_assert_eq!(borrow, overflow as u64);
        }
        out
    }

    fn modexp(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let len = self.n.len();
        let mut base_limbs = base.limbs.clone();
        base_limbs.resize(len, 0);
        let mut r2 = self.r2.clone();
        r2.resize(len, 0);
        // Convert to Montgomery form.
        let base_m = self.mont_mul(&base_limbs, &r2);
        // one_m = R mod n = mont_mul(1, R^2)
        let mut one = vec![0u64; len];
        one[0] = 1;
        let mut acc = self.mont_mul(&one, &r2);
        // Left-to-right square-and-multiply.
        for i in (0..exp.bit_len()).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mont_mul(&acc, &base_m);
            }
        }
        // Convert out of Montgomery form: mont_mul(acc, 1).
        let res = self.mont_mul(&acc, &one);
        let mut out = BigUint { limbs: res };
        out.normalize();
        out
    }
}

fn ge_limbs(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Greater => return true,
            Ordering::Less => return false,
            Ordering::Equal => {}
        }
    }
    true
}

/// Subtracts `b` from `a` in place, returning the final borrow (0 or 1).
fn sub_limbs_in_place(a: &mut [u64], b: &[u64]) -> u64 {
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    borrow
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn b(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
    }

    #[test]
    fn bytes_roundtrip() {
        let n = BigUint::from_bytes_be(&[0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09]);
        assert_eq!(
            n.to_bytes_be(),
            vec![0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09]
        );
    }

    #[test]
    fn bytes_leading_zeros_stripped() {
        let n = BigUint::from_bytes_be(&[0x00, 0x00, 0xff]);
        assert_eq!(n.to_bytes_be(), vec![0xff]);
        assert_eq!(n, b(255));
    }

    #[test]
    fn padded_bytes() {
        let n = b(0xabcd);
        assert_eq!(
            n.to_bytes_be_padded(4).unwrap(),
            vec![0x00, 0x00, 0xab, 0xcd]
        );
        assert!(b(0x1_0000_0000).to_bytes_be_padded(2).is_err());
    }

    #[test]
    fn hex_roundtrip() {
        let n = BigUint::from_hex("deadbeef00112233").unwrap();
        assert_eq!(n.to_hex(), "deadbeef00112233");
        assert_eq!(BigUint::from_hex("0").unwrap(), BigUint::zero());
        assert_eq!(BigUint::zero().to_hex(), "0");
        // Odd nibble count.
        assert_eq!(BigUint::from_hex("fff").unwrap(), b(0xfff));
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = BigUint::from_u64(u64::MAX);
        let s = a.add(&BigUint::one());
        assert_eq!(s.to_hex(), "10000000000000000");
    }

    #[test]
    fn sub_basics() {
        assert_eq!(b(100).checked_sub(&b(58)).unwrap(), b(42));
        assert!(b(1).checked_sub(&b(2)).is_err());
        let big = BigUint::from_hex("10000000000000000").unwrap();
        assert_eq!(
            big.checked_sub(&BigUint::one()).unwrap(),
            BigUint::from_u64(u64::MAX)
        );
    }

    #[test]
    fn mul_known() {
        assert_eq!(b(12345).mul(&b(6789)), b(12345 * 6789));
        assert!(b(5).mul(&BigUint::zero()).is_zero());
        let a = BigUint::from_u64(u64::MAX);
        assert_eq!(a.mul(&a).to_hex(), "fffffffffffffffe0000000000000001");
    }

    #[test]
    fn shifts() {
        assert_eq!(b(1).shl(64).to_hex(), "10000000000000000");
        assert_eq!(b(1).shl(64).shr(64), b(1));
        assert_eq!(b(0b1010).shr(1), b(0b101));
        assert!(b(1).shr(1).is_zero());
        assert_eq!(b(3).shl(3), b(24));
    }

    #[test]
    fn div_rem_small() {
        let (q, r) = b(100).div_rem(&b(7)).unwrap();
        assert_eq!(q, b(14));
        assert_eq!(r, b(2));
        assert!(b(1).div_rem(&BigUint::zero()).is_err());
        let (q, r) = b(3).div_rem(&b(10)).unwrap();
        assert!(q.is_zero());
        assert_eq!(r, b(3));
    }

    #[test]
    fn div_rem_multi_limb() {
        let n = BigUint::from_hex("1fffffffffffffffffffffffffffffffff").unwrap();
        let d = BigUint::from_hex("ffffffffffffffff1").unwrap();
        let (q, r) = n.div_rem(&d).unwrap();
        assert_eq!(q.mul(&d).add(&r), n);
        assert!(r.cmp_to(&d) == Ordering::Less);
    }

    #[test]
    fn modexp_small_cases() {
        assert_eq!(b(2).modexp(&b(10), &b(1000)).unwrap(), b(24));
        assert_eq!(b(3).modexp(&b(0), &b(7)).unwrap(), b(1));
        assert_eq!(b(0).modexp(&b(5), &b(7)).unwrap(), b(0));
        assert_eq!(b(5).modexp(&b(3), &b(1)).unwrap(), b(0));
        // Fermat's little theorem: a^(p-1) = 1 mod p.
        assert_eq!(b(17).modexp(&b(1008), &b(1009)).unwrap(), b(1));
    }

    #[test]
    fn modexp_even_modulus() {
        assert_eq!(b(3).modexp(&b(4), &b(100)).unwrap(), b(81));
        assert_eq!(b(7).modexp(&b(5), &b(36)).unwrap(), b(16807 % 36));
    }

    #[test]
    fn modexp_matches_generic_on_large_odd_modulus() {
        let m =
            BigUint::from_hex("f1d5d9c7a8b3e5f70123456789abcdef0123456789abcdef0123456789abcdef")
                .unwrap();
        let base = BigUint::from_hex("abcdef0123456789").unwrap();
        let exp = BigUint::from_hex("fedcba9876543210f00d").unwrap();
        let fast = base.modexp(&exp, &m).unwrap();
        let slow = base.rem(&m).unwrap().modexp_generic(&exp, &m).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn mod_inv_known() {
        // 3 * 5 = 15 = 1 mod 7 → inv(3) mod 7 = 5
        assert_eq!(b(3).mod_inv(&b(7)).unwrap(), b(5));
        assert_eq!(b(10).mod_inv(&b(17)).unwrap(), b(12)); // 120 = 7*17+1
        assert!(b(6).mod_inv(&b(9)).is_err()); // gcd 3
    }

    #[test]
    fn mod_add_sub() {
        let m = b(13);
        assert_eq!(b(7).mod_add(&b(8), &m).unwrap(), b(2));
        assert_eq!(b(3).mod_sub(&b(8), &m).unwrap(), b(8));
        assert_eq!(b(8).mod_sub(&b(3), &m).unwrap(), b(5));
    }

    #[test]
    fn random_below_respects_bound() {
        let bound = b(1000);
        let mut state = 0x12345u64;
        for _ in 0..100 {
            let v = BigUint::random_below(&bound, |buf| {
                for byte in buf.iter_mut() {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    *byte = (state >> 32) as u8;
                }
            })
            .unwrap();
            assert!(v.cmp_to(&bound) == Ordering::Less);
        }
    }

    proptest! {
        #[test]
        fn prop_add_sub_roundtrip(a in proptest::collection::vec(any::<u8>(), 0..40),
                                  c in proptest::collection::vec(any::<u8>(), 0..40)) {
            let x = BigUint::from_bytes_be(&a);
            let y = BigUint::from_bytes_be(&c);
            let s = x.add(&y);
            prop_assert_eq!(s.checked_sub(&y).unwrap(), x.clone());
            prop_assert_eq!(s.checked_sub(&x).unwrap(), y);
        }

        #[test]
        fn prop_div_rem_reconstruct(a in proptest::collection::vec(any::<u8>(), 0..48),
                                    d in proptest::collection::vec(any::<u8>(), 1..24)) {
            let n = BigUint::from_bytes_be(&a);
            let mut div = BigUint::from_bytes_be(&d);
            if div.is_zero() { div = BigUint::one(); }
            let (q, r) = n.div_rem(&div).unwrap();
            prop_assert_eq!(q.mul(&div).add(&r), n);
            prop_assert!(r.cmp_to(&div) == Ordering::Less);
        }

        #[test]
        fn prop_mul_commutative(a in proptest::collection::vec(any::<u8>(), 0..32),
                                c in proptest::collection::vec(any::<u8>(), 0..32)) {
            let x = BigUint::from_bytes_be(&a);
            let y = BigUint::from_bytes_be(&c);
            prop_assert_eq!(x.mul(&y), y.mul(&x));
        }

        #[test]
        fn prop_modexp_montgomery_matches_generic(
            base in proptest::collection::vec(any::<u8>(), 1..24),
            exp in proptest::collection::vec(any::<u8>(), 1..8),
            mut modbytes in proptest::collection::vec(any::<u8>(), 2..24),
        ) {
            // Force an odd modulus > 1.
            *modbytes.last_mut().unwrap() |= 1;
            let m = BigUint::from_bytes_be(&modbytes);
            prop_assume!(!m.is_one());
            let b = BigUint::from_bytes_be(&base);
            let e = BigUint::from_bytes_be(&exp);
            let fast = b.modexp(&e, &m).unwrap();
            let slow = b.rem(&m).unwrap().modexp_generic(&e, &m).unwrap();
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn prop_mod_inv_is_inverse(a in 1u64..u64::MAX, m in 3u64..u64::MAX) {
            let x = BigUint::from_u64(a);
            let modulus = BigUint::from_u64(m);
            if let Ok(inv) = x.mod_inv(&modulus) {
                let prod = x.mod_mul(&inv, &modulus).unwrap();
                prop_assert!(prod.is_one());
            }
        }

        #[test]
        fn prop_hex_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let n = BigUint::from_bytes_be(&bytes);
            prop_assert_eq!(BigUint::from_hex(&n.to_hex()).unwrap(), n);
        }

        #[test]
        fn prop_shift_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..32),
                                shift in 0usize..200) {
            let n = BigUint::from_bytes_be(&bytes);
            prop_assert_eq!(n.shl(shift).shr(shift), n);
        }
    }
}

#[cfg(test)]
mod primality_tests {
    use super::*;
    use crate::rng::SecureRng;

    fn filler() -> impl FnMut(&mut [u8]) {
        let mut rng = SecureRng::seed_from_u64(31337);
        move |buf: &mut [u8]| rng.fill_bytes(buf)
    }

    fn is_prime(n: &BigUint) -> bool {
        n.is_probable_prime(16, filler()).unwrap()
    }

    #[test]
    fn small_numbers_classified_correctly() {
        let primes = [2u64, 3, 5, 7, 11, 13, 101, 7919, 104729];
        let composites = [0u64, 1, 4, 6, 9, 15, 100, 7917, 104730];
        for p in primes {
            assert!(is_prime(&BigUint::from_u64(p)), "{p} is prime");
        }
        for c in composites {
            assert!(!is_prime(&BigUint::from_u64(c)), "{c} is composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Fermat liars that defeat naive a^(n-1) tests: 561, 1105, 1729,
        // 41041, 825265.
        for c in [561u64, 1105, 1729, 41041, 825265] {
            assert!(
                !is_prime(&BigUint::from_u64(c)),
                "{c} is a Carmichael number"
            );
        }
    }

    #[test]
    fn mersenne_and_known_large_primes() {
        // 2^89-1 and 2^107-1 are Mersenne primes; 2^97-1 is composite.
        let m = |e: usize| BigUint::one().shl(e).checked_sub(&BigUint::one()).unwrap();
        assert!(is_prime(&m(89)));
        assert!(is_prime(&m(107)));
        assert!(!is_prime(&m(97)));
    }

    #[test]
    fn oakley_groups_are_safe_primes() {
        // The foundation of the Schnorr group construction: the built-in
        // MODP primes are prime AND (p-1)/2 is prime (safe primes), so
        // g = 4 provably generates the order-q subgroup.
        use crate::dh::DhGroup;
        for group in [DhGroup::modp768(), DhGroup::modp1024()] {
            assert!(
                group.p.is_probable_prime(8, filler()).unwrap(),
                "{}-bit modulus must be prime",
                group.bits
            );
            let q = group.p.checked_sub(&BigUint::one()).unwrap().shr(1);
            assert!(
                q.is_probable_prime(8, filler()).unwrap(),
                "{}-bit (p-1)/2 must be prime",
                group.bits
            );
        }
    }
}
