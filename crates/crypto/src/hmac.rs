//! HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//!
//! Used for REPORT MACs (the paper's EREPORT produces "a message
//! authentication code over the data structure", §2.2), record-layer
//! authentication and key derivation.

use crate::ct::ct_eq;
use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Output length of HMAC-SHA256 in bytes.
pub const TAG_LEN: usize = DIGEST_LEN;

/// Incremental HMAC-SHA256.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates an HMAC context keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = crate::sha256::sha256(key);
            block_key[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = block_key[i] ^ 0x36;
            opad[i] = block_key[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            outer_key: opad,
        }
    }

    /// Feeds message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finalises and returns the 32-byte tag.
    pub fn finalize(self) -> [u8; TAG_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// One-shot HMAC-SHA256.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; TAG_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(msg);
    mac.finalize()
}

/// Constant-time verification of an HMAC tag.
pub fn hmac_verify(key: &[u8], msg: &[u8], tag: &[u8]) -> bool {
    let expected = hmac_sha256(key, msg);
    tag.len() == TAG_LEN && ct_eq(&expected, tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        assert_eq!(
            hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"key", b"message");
        assert!(hmac_verify(b"key", b"message", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!hmac_verify(b"key", b"message", &bad));
        assert!(!hmac_verify(b"key", b"other message", &tag));
        assert!(!hmac_verify(b"other key", b"message", &tag));
        assert!(!hmac_verify(b"key", b"message", &tag[..31]));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut mac = HmacSha256::new(b"k");
        mac.update(b"hello ");
        mac.update(b"world");
        assert_eq!(mac.finalize(), hmac_sha256(b"k", b"hello world"));
    }
}
