//! Schnorr signatures over a safe-prime group.
//!
//! Plays two roles in the workspace:
//!
//! 1. **Attestation signatures** — the SGX quoting enclave signs QUOTEs
//!    "using the private key of the CPU" (paper §2.2). Intel really uses the
//!    EPID group-signature scheme; the paper itself abstracts this away
//!    (fn. 2), and we follow suit with a conventional signature whose group
//!    public key is shared by all platforms of a "group" (see
//!    `teenet-sgx::quote`).
//! 2. **Authority signatures** — directory-authority consensus documents and
//!    software certificates in the Tor case study.
//!
//! The group is built on a safe prime `p` (from the DH MODP groups), so
//! `q = (p-1)/2` is prime and `g = 4` generates the order-`q` subgroup —
//! correct by construction, no trusted group constants needed beyond the
//! well-known primes.

use crate::bignum::BigUint;
use crate::dh::DhGroup;
use crate::error::CryptoError;
use crate::rng::SecureRng;
use crate::sha256::Sha256;
use crate::Result;

/// A Schnorr group over a safe prime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchnorrGroup {
    /// Safe prime modulus.
    pub p: BigUint,
    /// Subgroup order `(p-1)/2` (prime because `p` is safe).
    pub q: BigUint,
    /// Generator of the order-`q` subgroup (`4 = 2^2`).
    pub g: BigUint,
}

impl SchnorrGroup {
    /// Builds the Schnorr group on top of a safe-prime DH group.
    pub fn from_dh_group(group: &DhGroup) -> Self {
        let q = group.p.checked_sub(&BigUint::one()).expect("p > 1").shr(1);
        SchnorrGroup {
            p: group.p.clone(),
            q,
            g: BigUint::from_u64(4),
        }
    }

    /// The standard 1024-bit group (matching the paper's DH parameter).
    pub fn standard() -> Self {
        Self::from_dh_group(&DhGroup::modp1024())
    }

    /// A smaller 768-bit group for fast tests.
    pub fn small() -> Self {
        Self::from_dh_group(&DhGroup::modp768())
    }

    /// Hashes a message (and nonce commitment) into a challenge scalar in
    /// `[0, q)`.
    fn challenge(&self, r: &BigUint, public: &BigUint, msg: &[u8]) -> Result<BigUint> {
        let mut h = Sha256::new();
        h.update(b"teenet-schnorr-v1");
        h.update(&r.to_bytes_be());
        h.update(&public.to_bytes_be());
        h.update(msg);
        let digest = h.finalize();
        BigUint::from_bytes_be(&digest).rem(&self.q)
    }
}

/// A Schnorr signing keypair.
#[derive(Clone)]
pub struct SigningKey {
    group: SchnorrGroup,
    x: BigUint,
    /// The verification (public) key `g^x mod p`.
    pub public: VerifyingKey,
}

/// A Schnorr verification key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyingKey {
    group: SchnorrGroup,
    /// The public group element `y = g^x mod p`.
    pub y: BigUint,
}

/// A Schnorr signature in `(e, s)` form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Signature {
    /// Challenge scalar.
    pub e: BigUint,
    /// Response scalar.
    pub s: BigUint,
}

impl Signature {
    /// Serialises the signature (length-prefixed scalars).
    pub fn to_bytes(&self) -> Vec<u8> {
        let e = self.e.to_bytes_be();
        let s = self.s.to_bytes_be();
        let mut out = Vec::with_capacity(4 + e.len() + s.len());
        out.extend_from_slice(&(e.len() as u16).to_be_bytes());
        out.extend_from_slice(&e);
        out.extend_from_slice(&(s.len() as u16).to_be_bytes());
        out.extend_from_slice(&s);
        out
    }

    /// Parses a signature serialised by [`Signature::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let read = |b: &[u8]| -> Result<(BigUint, usize)> {
            if b.len() < 2 {
                return Err(CryptoError::Malformed("signature truncated"));
            }
            let len = u16::from_be_bytes([b[0], b[1]]) as usize;
            if b.len() < 2 + len {
                return Err(CryptoError::Malformed("signature scalar truncated"));
            }
            Ok((BigUint::from_bytes_be(&b[2..2 + len]), 2 + len))
        };
        let (e, n) = read(bytes)?;
        let (s, n2) = read(&bytes[n..])?;
        if n + n2 != bytes.len() {
            return Err(CryptoError::Malformed("trailing bytes after signature"));
        }
        Ok(Signature { e, s })
    }
}

impl SigningKey {
    /// Generates a keypair in `group`.
    pub fn generate(group: &SchnorrGroup, rng: &mut SecureRng) -> Result<Self> {
        let x = BigUint::random_below(&group.q, |buf| rng.fill_bytes(buf))?;
        let y = group.g.modexp(&x, &group.p)?;
        Ok(SigningKey {
            group: group.clone(),
            x,
            public: VerifyingKey {
                group: group.clone(),
                y,
            },
        })
    }

    /// Signs `msg` using a fresh nonce from `rng`.
    pub fn sign(&self, msg: &[u8], rng: &mut SecureRng) -> Result<Signature> {
        let g = &self.group;
        // Nonce k ∈ [1, q).
        let k = loop {
            let k = BigUint::random_below(&g.q, |buf| rng.fill_bytes(buf))?;
            if !k.is_zero() {
                break k;
            }
        };
        let r = g.g.modexp(&k, &g.p)?;
        let e = g.challenge(&r, &self.public.y, msg)?;
        // s = k + e*x mod q
        let s = k.mod_add(&e.mod_mul(&self.x, &g.q)?, &g.q)?;
        Ok(Signature { e, s })
    }

    /// Returns the verification key.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.public.clone()
    }
}

impl VerifyingKey {
    /// Verifies `sig` over `msg`.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> Result<()> {
        let g = &self.group;
        if sig.s.cmp_to(&g.q) != core::cmp::Ordering::Less
            || sig.e.cmp_to(&g.q) != core::cmp::Ordering::Less
        {
            return Err(CryptoError::VerificationFailed("signature scalar range"));
        }
        // r' = g^s * y^(q - e) mod p  (y^-e == y^(q-e) since ord(y) | q)
        let gs = g.g.modexp(&sig.s, &g.p)?;
        let neg_e = g.q.checked_sub(&sig.e)?;
        let ye = self.y.modexp(&neg_e, &g.p)?;
        let r = gs.mod_mul(&ye, &g.p)?;
        let e = g.challenge(&r, &self.y, msg)?;
        if e == sig.e {
            Ok(())
        } else {
            Err(CryptoError::VerificationFailed("Schnorr signature"))
        }
    }

    /// Serialises the public element, padded to the group size.
    pub fn to_bytes(&self) -> Vec<u8> {
        let len = self.group.p.bit_len().div_ceil(8);
        self.y.to_bytes_be_padded(len).expect("y < p")
    }

    /// Reconstructs a verifying key from bytes in a known group.
    pub fn from_bytes(group: &SchnorrGroup, bytes: &[u8]) -> Result<Self> {
        let y = BigUint::from_bytes_be(bytes);
        if y.is_zero() || y.cmp_to(&group.p) != core::cmp::Ordering::Less {
            return Err(CryptoError::InvalidParameter("public key out of range"));
        }
        Ok(VerifyingKey {
            group: group.clone(),
            y,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SchnorrGroup, SigningKey, SecureRng) {
        let group = SchnorrGroup::small();
        let mut rng = SecureRng::seed_from_u64(99);
        let key = SigningKey::generate(&group, &mut rng).unwrap();
        (group, key, rng)
    }

    #[test]
    fn group_generator_has_order_q() {
        let g = SchnorrGroup::small();
        // g^q mod p == 1 certifies the subgroup order.
        assert!(g.g.modexp(&g.q, &g.p).unwrap().is_one());
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (_, key, mut rng) = setup();
        let sig = key.sign(b"hello enclave", &mut rng).unwrap();
        key.public.verify(b"hello enclave", &sig).unwrap();
    }

    #[test]
    fn rejects_wrong_message() {
        let (_, key, mut rng) = setup();
        let sig = key.sign(b"msg A", &mut rng).unwrap();
        assert!(key.public.verify(b"msg B", &sig).is_err());
    }

    #[test]
    fn rejects_wrong_key() {
        let (group, key, mut rng) = setup();
        let other = SigningKey::generate(&group, &mut rng).unwrap();
        let sig = key.sign(b"msg", &mut rng).unwrap();
        assert!(other.public.verify(b"msg", &sig).is_err());
    }

    #[test]
    fn rejects_tampered_signature() {
        let (_, key, mut rng) = setup();
        let mut sig = key.sign(b"msg", &mut rng).unwrap();
        sig.s = sig.s.add(&BigUint::one());
        assert!(key.public.verify(b"msg", &sig).is_err());
    }

    #[test]
    fn rejects_out_of_range_scalars() {
        let (group, key, mut rng) = setup();
        let mut sig = key.sign(b"msg", &mut rng).unwrap();
        sig.s = group.q.clone();
        assert!(key.public.verify(b"msg", &sig).is_err());
    }

    #[test]
    fn signature_serialisation_roundtrip() {
        let (_, key, mut rng) = setup();
        let sig = key.sign(b"serialise me", &mut rng).unwrap();
        let bytes = sig.to_bytes();
        let parsed = Signature::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, sig);
        key.public.verify(b"serialise me", &parsed).unwrap();
    }

    #[test]
    fn signature_parse_rejects_garbage() {
        assert!(Signature::from_bytes(&[]).is_err());
        assert!(Signature::from_bytes(&[0, 5, 1]).is_err());
        let (_, key, mut rng) = setup();
        let mut bytes = key.sign(b"x", &mut rng).unwrap().to_bytes();
        bytes.push(0);
        assert!(Signature::from_bytes(&bytes).is_err());
    }

    #[test]
    fn verifying_key_serialisation_roundtrip() {
        let (group, key, _) = setup();
        let bytes = key.public.to_bytes();
        assert_eq!(bytes.len(), 96);
        let parsed = VerifyingKey::from_bytes(&group, &bytes).unwrap();
        assert_eq!(parsed, key.public);
    }

    #[test]
    fn verifying_key_rejects_out_of_range() {
        let group = SchnorrGroup::small();
        assert!(VerifyingKey::from_bytes(&group, &[]).is_err());
        let p_bytes = group.p.to_bytes_be();
        assert!(VerifyingKey::from_bytes(&group, &p_bytes).is_err());
    }

    #[test]
    fn signatures_are_randomised() {
        let (_, key, mut rng) = setup();
        let s1 = key.sign(b"same msg", &mut rng).unwrap();
        let s2 = key.sign(b"same msg", &mut rng).unwrap();
        assert_ne!(s1, s2);
        key.public.verify(b"same msg", &s1).unwrap();
        key.public.verify(b"same msg", &s2).unwrap();
    }
}
