//! Constant-time helpers.

/// Constant-time byte-slice equality.
///
/// Returns `false` immediately on length mismatch (lengths are public), but
/// compares contents without data-dependent early exit.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
    }

    #[test]
    fn unequal_slices() {
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(!ct_eq(b"\x00", b"\x01"));
    }
}
