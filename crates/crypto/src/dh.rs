//! Finite-field Diffie–Hellman key exchange.
//!
//! The paper's evaluation sets "the DH parameter as 1024-bit" (§5); we use
//! the 1024-bit MODP group from RFC 2409 (Oakley Group 2) by default and
//! also expose the 768/1536/2048-bit MODP groups for the key-size ablation
//! benchmarks.

use crate::bignum::BigUint;
use crate::error::CryptoError;
use crate::rng::SecureRng;
use crate::Result;

/// RFC 2409 Oakley Group 1 (768-bit) prime.
const MODP_768: &str = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
4FE1356D6D51C245E485B576625E7EC6F44C42E9A63A3620FFFFFFFFFFFFFFFF";

/// RFC 2409 Oakley Group 2 (1024-bit) prime — the paper's parameter size.
const MODP_1024: &str = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF";

/// RFC 3526 Group 5 (1536-bit) prime.
const MODP_1536: &str = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05\
98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB\
9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF";

/// RFC 3526 Group 14 (2048-bit) prime.
const MODP_2048: &str = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05\
98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB\
9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B\
E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718\
3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF";

/// A Diffie–Hellman group: safe prime `p` with generator `g = 2`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DhGroup {
    /// The group prime.
    pub p: BigUint,
    /// The generator.
    pub g: BigUint,
    /// Nominal size in bits (for reporting and cost accounting).
    pub bits: usize,
}

impl DhGroup {
    /// The 768-bit Oakley Group 1.
    pub fn modp768() -> Self {
        Self::from_hex(MODP_768, 768)
    }

    /// The 1024-bit Oakley Group 2 — the paper's evaluation parameter.
    pub fn modp1024() -> Self {
        Self::from_hex(MODP_1024, 1024)
    }

    /// The 1536-bit MODP Group 5.
    pub fn modp1536() -> Self {
        Self::from_hex(MODP_1536, 1536)
    }

    /// The 2048-bit MODP Group 14.
    pub fn modp2048() -> Self {
        Self::from_hex(MODP_2048, 2048)
    }

    fn from_hex(hex: &str, bits: usize) -> Self {
        let p = BigUint::from_hex(hex).expect("valid builtin prime");
        debug_assert_eq!(p.bit_len(), bits);
        DhGroup {
            p,
            g: BigUint::from_u64(2),
            bits,
        }
    }

    /// Length in bytes of a serialised group element.
    pub fn element_len(&self) -> usize {
        self.bits / 8
    }
}

/// An ephemeral DH keypair.
#[derive(Clone)]
pub struct DhKeyPair {
    group: DhGroup,
    private: BigUint,
    /// The public value `g^x mod p`.
    pub public: BigUint,
}

impl DhKeyPair {
    /// Generates an ephemeral keypair in `group` using `rng`.
    pub fn generate(group: &DhGroup, rng: &mut SecureRng) -> Result<Self> {
        // Private exponent in [2, p-2].
        let upper = group.p.checked_sub(&BigUint::from_u64(3))?;
        let private =
            BigUint::random_below(&upper, |buf| rng.fill_bytes(buf))?.add(&BigUint::from_u64(2));
        let public = group.g.modexp(&private, &group.p)?;
        Ok(DhKeyPair {
            group: group.clone(),
            private,
            public,
        })
    }

    /// Serialises the public value, zero-padded to the group element length.
    pub fn public_bytes(&self) -> Vec<u8> {
        self.public
            .to_bytes_be_padded(self.group.element_len())
            .expect("public < p fits element length")
    }

    /// Computes the shared secret with a peer's public value.
    ///
    /// Rejects degenerate peer values (0, 1, p-1, ≥ p) that would collapse
    /// the shared secret — a small-subgroup/invalid-key-share check.
    pub fn shared_secret(&self, peer_public: &BigUint) -> Result<Vec<u8>> {
        let p_minus_1 = self.group.p.checked_sub(&BigUint::one())?;
        if peer_public.is_zero()
            || peer_public.is_one()
            || peer_public.cmp_to(&p_minus_1) != core::cmp::Ordering::Less
        {
            return Err(CryptoError::InvalidParameter("degenerate DH public key"));
        }
        let secret = peer_public.modexp(&self.private, &self.group.p)?;
        secret.to_bytes_be_padded(self.group.element_len())
    }

    /// Parses a peer public value from bytes and computes the shared secret.
    pub fn shared_secret_from_bytes(&self, peer_public: &[u8]) -> Result<Vec<u8>> {
        self.shared_secret(&BigUint::from_bytes_be(peer_public))
    }

    /// The group this keypair lives in.
    pub fn group(&self) -> &DhGroup {
        &self.group
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_have_expected_sizes() {
        assert_eq!(DhGroup::modp768().p.bit_len(), 768);
        assert_eq!(DhGroup::modp1024().p.bit_len(), 1024);
        assert_eq!(DhGroup::modp1536().p.bit_len(), 1536);
        assert_eq!(DhGroup::modp2048().p.bit_len(), 2048);
    }

    #[test]
    fn key_exchange_agrees() {
        let group = DhGroup::modp1024();
        let mut rng = SecureRng::seed_from_u64(1);
        let alice = DhKeyPair::generate(&group, &mut rng).unwrap();
        let bob = DhKeyPair::generate(&group, &mut rng).unwrap();
        let s1 = alice.shared_secret(&bob.public).unwrap();
        let s2 = bob.shared_secret(&alice.public).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), group.element_len());
    }

    #[test]
    fn key_exchange_via_bytes() {
        let group = DhGroup::modp768();
        let mut rng = SecureRng::seed_from_u64(2);
        let alice = DhKeyPair::generate(&group, &mut rng).unwrap();
        let bob = DhKeyPair::generate(&group, &mut rng).unwrap();
        let s1 = alice.shared_secret_from_bytes(&bob.public_bytes()).unwrap();
        let s2 = bob.shared_secret_from_bytes(&alice.public_bytes()).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn distinct_sessions_distinct_secrets() {
        let group = DhGroup::modp768();
        let mut rng = SecureRng::seed_from_u64(3);
        let a1 = DhKeyPair::generate(&group, &mut rng).unwrap();
        let a2 = DhKeyPair::generate(&group, &mut rng).unwrap();
        let b = DhKeyPair::generate(&group, &mut rng).unwrap();
        assert_ne!(
            a1.shared_secret(&b.public).unwrap(),
            a2.shared_secret(&b.public).unwrap()
        );
    }

    #[test]
    fn rejects_degenerate_peers() {
        let group = DhGroup::modp768();
        let mut rng = SecureRng::seed_from_u64(4);
        let kp = DhKeyPair::generate(&group, &mut rng).unwrap();
        assert!(kp.shared_secret(&BigUint::zero()).is_err());
        assert!(kp.shared_secret(&BigUint::one()).is_err());
        let p_minus_1 = group.p.checked_sub(&BigUint::one()).unwrap();
        assert!(kp.shared_secret(&p_minus_1).is_err());
        assert!(kp.shared_secret(&group.p).is_err());
    }

    #[test]
    fn public_bytes_are_padded() {
        let group = DhGroup::modp768();
        let mut rng = SecureRng::seed_from_u64(5);
        let kp = DhKeyPair::generate(&group, &mut rng).unwrap();
        assert_eq!(kp.public_bytes().len(), 96);
    }
}
