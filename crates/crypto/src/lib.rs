#![warn(missing_docs)]

//! # teenet-crypto
//!
//! From-scratch cryptographic substrate for the `teenet` workspace, the Rust
//! reproduction of *"A First Step Towards Leveraging Commodity Trusted
//! Execution Environments for Network Applications"* (HotNets '15).
//!
//! The paper's OpenSGX prototype used polarssl with 1024-bit Diffie–Hellman,
//! AES-128 in ECB mode, and SHA-256. This crate provides the same primitives
//! (plus a few the rest of the workspace needs), implemented from first
//! principles with no external dependencies:
//!
//! * [`bignum::BigUint`] — arbitrary-precision unsigned integers with modular
//!   exponentiation (the workhorse of DH and Schnorr).
//! * [`dh`] — finite-field Diffie–Hellman over the 1024-bit Oakley Group 2
//!   prime (the parameter size the paper's evaluation uses).
//! * [`sha256`], [`hmac`], [`hkdf`] — hashing, authentication and key
//!   derivation.
//! * [`aes`] — AES-128 block cipher with ECB and CTR modes.
//! * [`chacha20`] — stream cipher, also backing the deterministic CSPRNG.
//! * [`schnorr`] — Schnorr signatures over a Schnorr group; stands in for the
//!   EPID group signature used by the SGX quoting enclave (the paper itself
//!   abstracts EPID as "the private key of the CPU", fn. 2).
//! * [`rng::SecureRng`] — a seedable ChaCha20-based CSPRNG so that every
//!   experiment in the workspace is deterministic and reproducible.
//!
//! ## Security disclaimer
//!
//! These implementations favour clarity and determinism for a research
//! simulator. They are **not** hardened against side channels beyond basic
//! constant-time tag comparison and must not be used to protect real data.

pub mod aes;
pub mod bignum;
pub mod chacha20;
pub mod ct;
pub mod dh;
pub mod error;
pub mod hkdf;
pub mod hmac;
pub mod rng;
pub mod schnorr;
pub mod sha256;

pub use bignum::BigUint;
pub use error::CryptoError;
pub use rng::SecureRng;

/// Convenience alias used throughout the crate.
pub type Result<T> = core::result::Result<T, CryptoError>;
