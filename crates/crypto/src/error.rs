//! Error type shared by all primitives in this crate.

use core::fmt;

/// Errors produced by the cryptographic primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// An input had an invalid length (key, nonce, block, …).
    InvalidLength {
        /// What the length described.
        what: &'static str,
        /// Length the caller supplied.
        got: usize,
        /// Length the primitive expects.
        expected: usize,
    },
    /// A MAC or signature failed verification.
    VerificationFailed(&'static str),
    /// A parameter was outside its valid domain (e.g. DH public key of 0).
    InvalidParameter(&'static str),
    /// Attempted division by zero in big-integer arithmetic.
    DivisionByZero,
    /// Ciphertext was malformed (truncated, bad framing, …).
    Malformed(&'static str),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidLength {
                what,
                got,
                expected,
            } => write!(f, "invalid {what} length: got {got}, expected {expected}"),
            CryptoError::VerificationFailed(what) => write!(f, "{what} verification failed"),
            CryptoError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            CryptoError::DivisionByZero => write!(f, "division by zero"),
            CryptoError::Malformed(what) => write!(f, "malformed input: {what}"),
        }
    }
}

impl std::error::Error for CryptoError {}
