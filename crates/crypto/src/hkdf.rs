//! HKDF-SHA256 (RFC 5869).
//!
//! Key derivation for secure channels bootstrapped during remote attestation
//! (the paper embeds Diffie–Hellman parameters in attestation messages and
//! derives a shared secret "similar to TLS handshaking", §2.2).

use crate::error::CryptoError;
use crate::hmac::{hmac_sha256, HmacSha256, TAG_LEN};
use crate::Result;

/// HKDF-Extract: derives a pseudorandom key from input keying material.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; TAG_LEN] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: expands `prk` into `out.len()` bytes of output keying
/// material bound to `info`.
///
/// Errors if more than `255 * 32` bytes are requested (RFC 5869 limit).
pub fn expand(prk: &[u8], info: &[u8], out: &mut [u8]) -> Result<()> {
    if out.len() > 255 * TAG_LEN {
        return Err(CryptoError::InvalidLength {
            what: "HKDF output",
            got: out.len(),
            expected: 255 * TAG_LEN,
        });
    }
    let mut prev: Option<[u8; TAG_LEN]> = None;
    let mut written = 0usize;
    let mut counter = 1u8;
    while written < out.len() {
        let mut mac = HmacSha256::new(prk);
        if let Some(p) = &prev {
            mac.update(p);
        }
        mac.update(info);
        mac.update(&[counter]);
        let block = mac.finalize();
        let take = (out.len() - written).min(TAG_LEN);
        out[written..written + take].copy_from_slice(&block[..take]);
        written += take;
        prev = Some(block);
        counter = counter.wrapping_add(1);
    }
    Ok(())
}

/// One-shot HKDF (extract + expand).
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], out: &mut [u8]) -> Result<()> {
    let prk = extract(salt, ikm);
    expand(&prk, info, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let mut okm = [0u8; 42];
        expand(&prk, &info, &mut okm).unwrap();
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 test case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case3() {
        let ikm = [0x0bu8; 22];
        let prk = extract(&[], &ikm);
        let mut okm = [0u8; 42];
        expand(&prk, &[], &mut okm).unwrap();
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn rejects_oversized_output() {
        let mut out = vec![0u8; 255 * 32 + 1];
        assert!(expand(&[0u8; 32], b"", &mut out).is_err());
    }

    #[test]
    fn different_info_different_keys() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        hkdf(b"salt", b"secret", b"client", &mut a).unwrap();
        hkdf(b"salt", b"secret", b"server", &mut b).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn max_output_ok() {
        let mut out = vec![0u8; 255 * 32];
        expand(&[7u8; 32], b"info", &mut out).unwrap();
        // All blocks distinct from one another (spot check first/last).
        assert_ne!(&out[..32], &out[out.len() - 32..]);
    }
}
