//! AES-128 (FIPS 197) with ECB and CTR modes.
//!
//! The paper's prototype "use\[s\] AES-ECB mode as a symmetric key operation
//! with 128-bit key using polarssl" (§5). ECB is kept for fidelity with the
//! paper's measurements; everything security-relevant in the workspace uses
//! CTR + HMAC instead.

use crate::error::CryptoError;
use crate::Result;

/// AES block size in bytes.
pub const BLOCK_LEN: usize = 16;
/// AES-128 key size in bytes.
pub const KEY_LEN: usize = 16;

const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

fn gmul(a: u8, b: u8) -> u8 {
    let mut result = 0u8;
    let mut a = a;
    let mut b = b;
    while b != 0 {
        if b & 1 == 1 {
            result ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    result
}

/// An AES-128 cipher instance with an expanded key schedule.
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Expands the 16-byte key into the 11 round keys.
    pub fn new(key: &[u8]) -> Result<Self> {
        if key.len() != KEY_LEN {
            return Err(CryptoError::InvalidLength {
                what: "AES-128 key",
                got: key.len(),
                expected: KEY_LEN,
            });
        }
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i].copy_from_slice(&key[i * 4..i * 4 + 4]);
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for r in 0..11 {
            for c in 0..4 {
                round_keys[r][c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
            }
        }
        Ok(Aes128 { round_keys })
    }

    /// Encrypts a single 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        add_round_key(block, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[10]);
    }

    /// Decrypts a single 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        add_round_key(block, &self.round_keys[10]);
        inv_shift_rows(block);
        inv_sub_bytes(block);
        for round in (1..10).rev() {
            add_round_key(block, &self.round_keys[round]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            inv_sub_bytes(block);
        }
        add_round_key(block, &self.round_keys[0]);
    }

    /// ECB-mode encryption. `data` length must be a multiple of 16.
    ///
    /// Present for fidelity with the paper's prototype; prefer
    /// [`Aes128::ctr_apply`] for anything real.
    pub fn ecb_encrypt(&self, data: &mut [u8]) -> Result<()> {
        if !data.len().is_multiple_of(BLOCK_LEN) {
            return Err(CryptoError::InvalidLength {
                what: "ECB plaintext",
                got: data.len(),
                expected: data.len().next_multiple_of(BLOCK_LEN),
            });
        }
        for chunk in data.chunks_exact_mut(BLOCK_LEN) {
            let block: &mut [u8; BLOCK_LEN] = chunk.try_into().expect("exact chunk");
            self.encrypt_block(block);
        }
        Ok(())
    }

    /// ECB-mode decryption. `data` length must be a multiple of 16.
    pub fn ecb_decrypt(&self, data: &mut [u8]) -> Result<()> {
        if !data.len().is_multiple_of(BLOCK_LEN) {
            return Err(CryptoError::InvalidLength {
                what: "ECB ciphertext",
                got: data.len(),
                expected: data.len().next_multiple_of(BLOCK_LEN),
            });
        }
        for chunk in data.chunks_exact_mut(BLOCK_LEN) {
            let block: &mut [u8; BLOCK_LEN] = chunk.try_into().expect("exact chunk");
            self.decrypt_block(block);
        }
        Ok(())
    }

    /// CTR-mode keystream application (encrypt == decrypt).
    ///
    /// `nonce` is the 16-byte initial counter block; the low 32 bits are
    /// incremented per block (big-endian), as in NIST SP 800-38A.
    pub fn ctr_apply(&self, nonce: &[u8; BLOCK_LEN], data: &mut [u8]) {
        let mut counter = *nonce;
        for chunk in data.chunks_mut(BLOCK_LEN) {
            let mut keystream = counter;
            self.encrypt_block(&mut keystream);
            for (d, k) in chunk.iter_mut().zip(keystream.iter()) {
                *d ^= k;
            }
            // Increment low 32 bits big-endian.
            let mut ctr32 =
                u32::from_be_bytes([counter[12], counter[13], counter[14], counter[15]]);
            ctr32 = ctr32.wrapping_add(1);
            counter[12..16].copy_from_slice(&ctr32.to_be_bytes());
        }
    }
}

fn add_round_key(state: &mut [u8; 16], key: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= key[i];
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn inv_sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

// State is column-major: state[col * 4 + row].
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for row in 1..4 {
        for col in 0..4 {
            state[col * 4 + row] = s[((col + row) % 4) * 4 + row];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for row in 1..4 {
        for col in 0..4 {
            state[((col + row) % 4) * 4 + row] = s[col * 4 + row];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for col in 0..4 {
        let a = [
            state[col * 4],
            state[col * 4 + 1],
            state[col * 4 + 2],
            state[col * 4 + 3],
        ];
        state[col * 4] = xtime(a[0]) ^ (xtime(a[1]) ^ a[1]) ^ a[2] ^ a[3];
        state[col * 4 + 1] = a[0] ^ xtime(a[1]) ^ (xtime(a[2]) ^ a[2]) ^ a[3];
        state[col * 4 + 2] = a[0] ^ a[1] ^ xtime(a[2]) ^ (xtime(a[3]) ^ a[3]);
        state[col * 4 + 3] = (xtime(a[0]) ^ a[0]) ^ a[1] ^ a[2] ^ xtime(a[3]);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for col in 0..4 {
        let a = [
            state[col * 4],
            state[col * 4 + 1],
            state[col * 4 + 2],
            state[col * 4 + 3],
        ];
        state[col * 4] = gmul(a[0], 0x0e) ^ gmul(a[1], 0x0b) ^ gmul(a[2], 0x0d) ^ gmul(a[3], 0x09);
        state[col * 4 + 1] =
            gmul(a[0], 0x09) ^ gmul(a[1], 0x0e) ^ gmul(a[2], 0x0b) ^ gmul(a[3], 0x0d);
        state[col * 4 + 2] =
            gmul(a[0], 0x0d) ^ gmul(a[1], 0x09) ^ gmul(a[2], 0x0e) ^ gmul(a[3], 0x0b);
        state[col * 4 + 3] =
            gmul(a[0], 0x0b) ^ gmul(a[1], 0x0d) ^ gmul(a[2], 0x09) ^ gmul(a[3], 0x0e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // FIPS-197 Appendix B.
    #[test]
    fn fips197_appendix_b() {
        let key = unhex("2b7e151628aed2a6abf7158809cf4f3c");
        let cipher = Aes128::new(&key).unwrap();
        let mut block: [u8; 16] = unhex("3243f6a8885a308d313198a2e0370734")
            .try_into()
            .unwrap();
        cipher.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), unhex("3925841d02dc09fbdc118597196a0b32"));
        cipher.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), unhex("3243f6a8885a308d313198a2e0370734"));
    }

    // FIPS-197 Appendix C.1.
    #[test]
    fn fips197_appendix_c1() {
        let key = unhex("000102030405060708090a0b0c0d0e0f");
        let cipher = Aes128::new(&key).unwrap();
        let mut block: [u8; 16] = unhex("00112233445566778899aabbccddeeff")
            .try_into()
            .unwrap();
        cipher.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), unhex("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    // NIST SP 800-38A F.1.1 (ECB-AES128 encrypt, first two blocks).
    #[test]
    fn sp800_38a_ecb() {
        let key = unhex("2b7e151628aed2a6abf7158809cf4f3c");
        let cipher = Aes128::new(&key).unwrap();
        let mut data = unhex("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51");
        cipher.ecb_encrypt(&mut data).unwrap();
        assert_eq!(
            data,
            unhex("3ad77bb40d7a3660a89ecaf32466ef97f5d3d58503b9699de785895a96fdbaaf")
        );
        cipher.ecb_decrypt(&mut data).unwrap();
        assert_eq!(
            data,
            unhex("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51")
        );
    }

    // NIST SP 800-38A F.5.1 (CTR-AES128 encrypt, first two blocks).
    #[test]
    fn sp800_38a_ctr() {
        let key = unhex("2b7e151628aed2a6abf7158809cf4f3c");
        let cipher = Aes128::new(&key).unwrap();
        let nonce: [u8; 16] = unhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
            .try_into()
            .unwrap();
        let mut data = unhex("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51");
        cipher.ctr_apply(&nonce, &mut data);
        assert_eq!(
            data,
            unhex("874d6191b620e3261bef6864990db6ce9806f66b7970fdff8617187bb9fffdff")
        );
        // CTR is its own inverse.
        // teenet-analyze: allow(seal-nonce-reuse) -- round-trip against the NIST vector: the test decrypts what it just encrypted, which requires the same nonce by definition
        cipher.ctr_apply(&nonce, &mut data);
        assert_eq!(
            data,
            unhex("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51")
        );
    }

    #[test]
    fn rejects_bad_key_length() {
        assert!(Aes128::new(&[0u8; 15]).is_err());
        assert!(Aes128::new(&[0u8; 32]).is_err());
    }

    #[test]
    fn ecb_rejects_partial_blocks() {
        let cipher = Aes128::new(&[0u8; 16]).unwrap();
        let mut data = vec![0u8; 17];
        assert!(cipher.ecb_encrypt(&mut data).is_err());
        assert!(cipher.ecb_decrypt(&mut data).is_err());
    }

    #[test]
    fn ctr_handles_partial_final_block() {
        let cipher = Aes128::new(&[1u8; 16]).unwrap();
        let nonce = [0u8; 16];
        let mut data = b"seventeen bytes!!".to_vec();
        let orig = data.clone();
        cipher.ctr_apply(&nonce, &mut data);
        assert_ne!(data, orig);
        // teenet-analyze: allow(seal-nonce-reuse) -- round-trip test: decrypting the buffer requires re-applying the same keystream
        cipher.ctr_apply(&nonce, &mut data);
        assert_eq!(data, orig);
    }

    proptest! {
        #[test]
        fn prop_block_roundtrip(key in proptest::array::uniform16(any::<u8>()),
                                block in proptest::array::uniform16(any::<u8>())) {
            let cipher = Aes128::new(&key).unwrap();
            let mut b = block;
            cipher.encrypt_block(&mut b);
            cipher.decrypt_block(&mut b);
            prop_assert_eq!(b, block);
        }

        #[test]
        fn prop_ctr_roundtrip(key in proptest::array::uniform16(any::<u8>()),
                              nonce in proptest::array::uniform16(any::<u8>()),
                              data in proptest::collection::vec(any::<u8>(), 0..200)) {
            let cipher = Aes128::new(&key).unwrap();
            let mut buf = data.clone();
            cipher.ctr_apply(&nonce, &mut buf);
            // teenet-analyze: allow(seal-nonce-reuse) -- property under test IS the involution: applying the same nonce twice must restore the plaintext
            cipher.ctr_apply(&nonce, &mut buf);
            prop_assert_eq!(buf, data);
        }
    }
}
