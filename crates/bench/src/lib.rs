#![warn(missing_docs)]

//! Shared harness code for the table/figure reproduction binaries and the
//! Criterion benches.
//!
//! Each binary regenerates one artifact of the paper's evaluation (§5):
//!
//! | binary   | artifact |
//! |----------|----------|
//! | `table1` | instructions during remote attestation |
//! | `table2` | instructions per enclave packet send |
//! | `table3` | remote attestations per application design |
//! | `table4` | SDN inter-domain routing costs w/ and w/o SGX |
//! | `fig3`   | controller CPU cycles vs number of ASes |

use teenet::attest::AttestConfig;
use teenet::identity::IdentityPolicy;
use teenet::responder::{attest_enclave, AttestResponder};
use teenet_crypto::schnorr::{SchnorrGroup, SigningKey};
use teenet_crypto::SecureRng;
use teenet_sgx::cost::{CostModel, Counters};
use teenet_sgx::{
    deploy_platform, EnclaveCtx, EnclaveId, EnclaveProgram, EpidGroup, SgxError, TeeBackend,
    TeePlatform,
};

/// A minimal attestation-target enclave (responder ecalls only) used by
/// the Table 1 harness and the attestation benches.
pub struct AttestTarget {
    responder: AttestResponder,
}

impl AttestTarget {
    /// Creates the target with the given attestation configuration.
    pub fn new(config: AttestConfig) -> Self {
        AttestTarget {
            responder: AttestResponder::new(config),
        }
    }
}

impl EnclaveProgram for AttestTarget {
    fn code_image(&self) -> Vec<u8> {
        b"bench-attest-target-v1".to_vec()
    }
    fn ecall(
        &mut self,
        ctx: &mut EnclaveCtx<'_>,
        fn_id: u64,
        input: &[u8],
    ) -> core::result::Result<Vec<u8>, SgxError> {
        match fn_id {
            0 => self.responder.handle_begin(ctx, input),
            1 => self.responder.handle_finish(ctx, input),
            _ => Err(SgxError::EcallRejected("unknown fn")),
        }
    }
}

/// A packet-sending enclave for the Table 2 harness: ecall input is
/// `count(u32) ‖ encrypt(u8)`, sends that many MTU-sized packets in one
/// batch.
pub struct PacketSender;

impl EnclaveProgram for PacketSender {
    fn code_image(&self) -> Vec<u8> {
        b"bench-packet-sender-v1".to_vec()
    }
    fn ecall(
        &mut self,
        ctx: &mut EnclaveCtx<'_>,
        _fn_id: u64,
        input: &[u8],
    ) -> core::result::Result<Vec<u8>, SgxError> {
        if input.len() != 5 {
            return Err(SgxError::EcallRejected("want count+flag"));
        }
        let count = u32::from_le_bytes(input[..4].try_into().expect("4")) as usize;
        let encrypt = input[4] == 1;
        let packet = [0u8; teenet_netsim::MTU];
        let packets: Vec<&[u8]> = (0..count).map(|_| packet.as_slice()).collect();
        ctx.send_packets(&packets, encrypt);
        Ok(Vec::new())
    }
}

/// Everything needed to run one attestation measurement.
pub struct AttestBench {
    /// The target platform (hosting target + quoting enclaves).
    pub platform: Box<dyn TeePlatform>,
    /// The target enclave.
    pub enclave: EnclaveId,
    /// The attestation group.
    pub epid: EpidGroup,
    /// Challenger-side RNG.
    pub rng: SecureRng,
    /// The cost model.
    pub model: CostModel,
}

impl AttestBench {
    /// Builds the fixture.
    pub fn new(config: &AttestConfig, seed: u64) -> Self {
        let mut rng = SecureRng::seed_from_u64(seed);
        let epid = EpidGroup::new(1, &mut rng).expect("group");
        let mut platform =
            deploy_platform(TeeBackend::Sgx, "bench-target", &epid, seed).expect("platform");
        let author = SigningKey::generate(&SchnorrGroup::small(), &mut rng).expect("key");
        let enclave = platform
            .create_signed(Box::new(AttestTarget::new(config.clone())), &author, 1)
            .expect("enclave");
        AttestBench {
            platform,
            enclave,
            epid,
            rng,
            model: CostModel::paper(),
        }
    }

    /// Runs one full remote attestation; returns
    /// (target counters delta, quoting counters delta, challenger counters).
    pub fn run_once(&mut self, config: &AttestConfig) -> (Counters, Counters, Counters) {
        let target_before = self.platform.counters_of(self.enclave).expect("counters");
        let quoting_before = self.platform.attestor_counters();
        let (outcome, _) = attest_enclave(
            IdentityPolicy::AcceptAny,
            config.clone(),
            &self.model,
            &mut self.rng,
            self.platform.as_mut(),
            self.enclave,
            0,
            1,
            &self.epid.public_key(),
            None,
        )
        .expect("attestation");
        let target = self
            .platform
            .counters_of(self.enclave)
            .expect("counters")
            .since(target_before);
        let quoting = self.platform.attestor_counters().since(quoting_before);
        (target, quoting, outcome.counters)
    }
}

/// Measures one batched packet send of `count` MTU packets; returns the
/// counters attributable to the send itself (the triggering ecall's own
/// entry cost is subtracted, since the paper measures the send operation).
pub fn measure_packet_send(count: u32, encrypt: bool, seed: u64) -> Counters {
    let mut rng = SecureRng::seed_from_u64(seed);
    let epid = EpidGroup::new(1, &mut rng).expect("group");
    let mut platform = deploy_platform(TeeBackend::Sgx, "bench-io", &epid, seed).expect("platform");
    let author = SigningKey::generate(&SchnorrGroup::small(), &mut rng).expect("key");
    let enclave = platform
        .create_signed(Box::new(PacketSender), &author, 1)
        .expect("enclave");

    // Baseline: an ecall that sends zero packets still pays the enclave
    // entry/exit, argument marshalling, and the batch fixed costs;
    // subtract everything except those batch fixed costs (which belong to
    // the measured send).
    let mut input = 0u32.to_le_bytes().to_vec();
    input.push(encrypt as u8);
    let before = platform.counters_of(enclave).expect("counters");
    platform.ecall_nohost(enclave, 0, &input).expect("ecall");
    let zero_call = platform
        .counters_of(enclave)
        .expect("counters")
        .since(before);
    let ecall_overhead = Counters {
        sgx_instr: zero_call.sgx_instr - platform.model().io_batch_sgx,
        normal_instr: zero_call.normal_instr
            - platform.model().send_base
            - if encrypt {
                platform.model().aes_key_schedule
            } else {
                0
            },
    };

    let mut input = count.to_le_bytes().to_vec();
    input.push(encrypt as u8);
    let before = platform.counters_of(enclave).expect("counters");
    platform.ecall_nohost(enclave, 0, &input).expect("ecall");
    let total = platform
        .counters_of(enclave)
        .expect("counters")
        .since(before);
    total.since(ecall_overhead)
}

#[cfg(test)]
mod tests {
    use super::*;
    use teenet_crypto::dh::DhGroup;

    #[test]
    fn attest_bench_runs() {
        let config = AttestConfig::fast();
        let mut bench = AttestBench::new(&config, 1);
        let (target, quoting, challenger) = bench.run_once(&config);
        assert!(target.sgx_instr > 0);
        assert!(quoting.normal_instr > 0);
        assert!(challenger.normal_instr > 0);
    }

    #[test]
    fn packet_send_counters_match_table2_model() {
        let one = measure_packet_send(1, false, 2);
        assert_eq!(one.sgx_instr, 6, "paper: 6 SGX(U) for one packet");
        assert!((12_000..14_000).contains(&one.normal_instr), "{one:?}");
        let hundred = measure_packet_send(100, true, 2);
        assert_eq!(hundred.sgx_instr, 204, "paper: 204 SGX(U) for 100");
        assert!(
            (950_000..990_000).contains(&hundred.normal_instr),
            "{hundred:?}"
        );
    }

    #[test]
    fn dh_dominates_attestation() {
        let no_dh = AttestConfig::no_dh(DhGroup::modp1024());
        let with_dh = AttestConfig::default();
        let mut b1 = AttestBench::new(&no_dh, 3);
        let (t1, _, _) = b1.run_once(&no_dh);
        let mut b2 = AttestBench::new(&with_dh, 3);
        let (t2, _, _) = b2.run_once(&with_dh);
        assert!(t2.normal_instr > 20 * t1.normal_instr);
    }
}
