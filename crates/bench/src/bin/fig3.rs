//! Reproduces **Figure 3**: CPU cycles consumed by the inter-domain
//! controller as the number of ASes grows, with and without SGX.
//!
//! The paper's observations to match in shape: overhead grows with
//! topology size, and the SGX controller consumes ~90% more cycles.
//!
//! Run: `cargo run --release -p teenet-bench --bin fig3`

use teenet::attest::AttestConfig;
use teenet::fmt;
use teenet_crypto::SecureRng;
use teenet_interdomain::{default_policies, run_native, SdnDeployment, Topology};
use teenet_sgx::cost::CostModel;

fn main() {
    let model = CostModel::paper();
    println!("Figure 3: CPU cycles of the inter-domain controller vs number of ASes");
    println!("(cycles = 10_000 x SGX instr + 1.8 x normal instr, per the paper's Sec. 5 fn. 6)");
    println!();
    println!(
        "{:>6} {:>16} {:>16} {:>10}",
        "#ASes", "w/o SGX (cyc)", "w/ SGX (cyc)", "overhead"
    );

    let mut series = Vec::new();
    for n in [5u32, 10, 15, 20, 25, 30] {
        let mut rng = SecureRng::seed_from_u64(2015);
        let topology = Topology::random(n, &mut rng);
        let policies = default_policies(&topology);
        let native = run_native(&topology, &policies);
        let mut deployment =
            SdnDeployment::new(&topology, &policies, AttestConfig::fast(), 7).expect("deployment");
        let report = deployment.run().expect("run");

        let native_cycles = native.interdomain.cycles(&model);
        let sgx_cycles = report.interdomain.cycles(&model);
        println!(
            "{:>6} {:>16} {:>16} {:>10}",
            n,
            fmt::cycles(native_cycles),
            fmt::cycles(sgx_cycles),
            fmt::overhead_pct(sgx_cycles, native_cycles)
        );
        series.push((n, native_cycles, sgx_cycles));
    }

    println!();
    let (_, n0, s0) = series.first().expect("nonempty");
    let (_, n1, s1) = series.last().expect("nonempty");
    println!(
        "Growth 5->30 ASes: w/o SGX {:.1}x, w/ SGX {:.1}x (overhead grows with topology complexity)",
        *n1 as f64 / *n0 as f64,
        *s1 as f64 / *s0 as f64
    );
    let overall = series
        .iter()
        .map(|(_, n, s)| *s as f64 / *n as f64 - 1.0)
        .sum::<f64>()
        / series.len() as f64;
    println!(
        "Mean cycle overhead across the sweep: {:.0}% (paper: ~90%)",
        overall * 100.0
    );
}
