//! Reproduces **Table 2**: number of instructions for a single packet
//! transmission from inside an enclave — 1 packet vs a 100-packet batch,
//! with and without symmetric encryption.
//!
//! Run: `cargo run --release -p teenet-bench --bin table2`

use teenet::fmt;
use teenet_bench::measure_packet_send;

fn main() {
    let one_plain = measure_packet_send(1, false, 1);
    let one_crypto = measure_packet_send(1, true, 1);
    let batch_plain = measure_packet_send(100, false, 1);
    let batch_crypto = measure_packet_send(100, true, 1);

    println!("Table 2: Number of instructions of a single packet transmission");
    println!("(paper values: 1 pkt 6 SGX, 13K/97K normal; 100 pkts 204 SGX, 136K/972K normal)");
    println!();
    println!("               |  SGX (1 packet)     |  SGX (100 packets)  |");
    println!("               | w/o crypto   crypto | w/o crypto   crypto |");
    println!(
        "SGX(U) inst.   | {:>10} {:>8} | {:>10} {:>8} |",
        one_plain.sgx_instr, one_crypto.sgx_instr, batch_plain.sgx_instr, batch_crypto.sgx_instr
    );
    println!(
        "Normal inst.   | {:>10} {:>8} | {:>10} {:>8} |",
        fmt::instr(one_plain.normal_instr),
        fmt::instr(one_crypto.normal_instr),
        fmt::instr(batch_plain.normal_instr),
        fmt::instr(batch_crypto.normal_instr)
    );
    println!();
    let per_packet_single = one_plain.normal_instr;
    let per_packet_batched = batch_plain.normal_instr / 100;
    println!(
        "Amortisation: {} normal instructions for a lone packet vs {} per packet in a 100-batch ({}x better)",
        fmt::instr(per_packet_single),
        fmt::instr(per_packet_batched),
        per_packet_single / per_packet_batched.max(1)
    );
}
