//! Reproduces **Table 4**: costs of SDN-based inter-domain routing with
//! and without SGX, for the inter-domain controller and the average
//! AS-local controller, on a random 30-AS topology (setup costs excluded,
//! as in the paper).
//!
//! Run: `cargo run --release -p teenet-bench --bin table4`

use teenet::attest::AttestConfig;
use teenet::fmt;
use teenet_crypto::SecureRng;
use teenet_interdomain::{default_policies, run_native, SdnDeployment, Topology};

fn main() {
    let n_ases = 30;
    let mut rng = SecureRng::seed_from_u64(2015);
    let topology = Topology::random(n_ases, &mut rng);
    let policies = default_policies(&topology);

    let native = run_native(&topology, &policies);
    let mut deployment =
        SdnDeployment::new(&topology, &policies, AttestConfig::fast(), 7).expect("deployment");
    let report = deployment.run().expect("run");

    let native_avg = native.aslocal_avg();
    let sgx_avg = report.aslocal_avg();

    println!("Table 4: Costs of SDN-based inter-domain routing ({n_ases} ASes)");
    println!("(paper values: inter-domain -/74M vs 1448/135M; AS-local -/13M vs 42/24M)");
    println!();
    println!("               |    Inter-domain    |   AS-local (avg.)  |");
    println!("               | w/o SGX    w/ SGX  | w/o SGX    w/ SGX  |");
    println!(
        "SGX(U) inst.   | {:>7} {:>9}  | {:>7} {:>9}  |",
        "-", report.interdomain.sgx_instr, "-", sgx_avg.sgx_instr
    );
    println!(
        "Normal inst.   | {:>7} {:>9}  | {:>7} {:>9}  |",
        fmt::instr(native.interdomain.normal_instr),
        fmt::instr(report.interdomain.normal_instr),
        fmt::instr(native_avg.normal_instr),
        fmt::instr(sgx_avg.normal_instr)
    );
    println!();
    println!(
        "Inter-domain overhead: {} more normal instructions (paper: 82%)",
        fmt::overhead_pct(
            report.interdomain.normal_instr,
            native.interdomain.normal_instr
        )
    );
    println!(
        "AS-local overhead:     {} more normal instructions (paper: 69% on the paper's topology draw)",
        fmt::overhead_pct(sgx_avg.normal_instr, native_avg.normal_instr)
    );
    println!(
        "Setup (excluded, one-time): {} remote attestations",
        report.attestations
    );
    println!(
        "Routes installed per AS (avg): {}",
        report
            .routes_installed
            .iter()
            .map(|&c| c as u64)
            .sum::<u64>()
            / n_ases as u64
    );
}
