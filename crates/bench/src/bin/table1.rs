//! Reproduces **Table 1**: number of instructions during remote
//! attestation, per enclave role, with and without the Diffie–Hellman
//! channel bootstrap.
//!
//! Run: `cargo run --release -p teenet-bench --bin table1`

use teenet::attest::AttestConfig;
use teenet::fmt;
use teenet_bench::AttestBench;
use teenet_crypto::dh::DhGroup;
use teenet_sgx::cost::CostModel;

fn main() {
    let model = CostModel::paper();
    let no_dh_cfg = AttestConfig::no_dh(DhGroup::modp1024());
    let dh_cfg = AttestConfig::default(); // 1024-bit DH, as in the paper

    let mut bench = AttestBench::new(&no_dh_cfg, 1);
    let (t_no, q_no, c_no) = bench.run_once(&no_dh_cfg);
    let mut bench = AttestBench::new(&dh_cfg, 1);
    let (t_dh, q_dh, c_dh) = bench.run_once(&dh_cfg);

    println!("Table 1: Number of instructions during remote attestation");
    println!("(paper values: target 20/20 SGX, 154M/4338M normal; quoting 17/17, 125M/125M; challenger 8/8, 124M/348M)");
    println!();
    println!("                 |    Target     |    Quoting    |  Challenger   |");
    println!("                 | w/o DH  w/ DH | w/o DH  w/ DH | w/o DH  w/ DH |");
    println!(
        "SGX(U) inst.     | {:>6}  {:>5} | {:>6}  {:>5} | {:>6}  {:>5} |",
        t_no.sgx_instr,
        t_dh.sgx_instr,
        q_no.sgx_instr,
        q_dh.sgx_instr,
        c_no.sgx_instr,
        c_dh.sgx_instr
    );
    println!(
        "Normal inst.     | {:>6}  {:>5} | {:>6}  {:>5} | {:>6}  {:>5} |",
        fmt::instr(t_no.normal_instr),
        fmt::instr(t_dh.normal_instr),
        fmt::instr(q_no.normal_instr),
        fmt::instr(q_dh.normal_instr),
        fmt::instr(c_no.normal_instr),
        fmt::instr(c_dh.normal_instr)
    );
    println!();
    let challenger_cycles = c_dh.cycles(&model);
    let mut remote = t_dh;
    remote.merge(q_dh);
    println!(
        "Challenger cycles (w/ DH): {} (paper: 626M)",
        fmt::cycles(challenger_cycles)
    );
    println!(
        "Remote platform cycles (target+quoting, w/ DH): {} (paper: 8033M)",
        fmt::cycles(remote.cycles(&model))
    );
    let dh_share = (t_dh.normal_instr - t_no.normal_instr) as f64 / t_dh.normal_instr as f64;
    println!(
        "DH share of target-side work: {:.0}% (paper: \"the Diffie-Hellman key exchange takes up 90% of the cycles\")",
        dh_share * 100.0
    );
}
