//! `loadgen` — scenario-driven load generation against the paper's
//! applications on virtual time.
//!
//! ```text
//! cargo run -p teenet-bench --bin loadgen -- --scenario attest --sessions 10000 --seed 1
//! ```
//!
//! Calibrates the chosen workload against the real enclaves (a handful of
//! real protocol sessions), then replays it at scale on the deterministic
//! network simulator: open-loop Poisson arrivals or closed-loop fixed
//! concurrency, with optional link fault injection. Same scenario + seed
//! ⇒ byte-identical `--json` output.
//!
//! The default engine is the streaming one — sessions generated lazily
//! and retired as they finish, memory O(live sessions) — so `--sessions
//! 1000000` runs in a few megabytes of RSS. `--reference` switches to the
//! retained oracle engine (every session materialised, O(sessions)
//! memory), whose reports are byte-identical; CI diffs the two. `--rss`
//! prints the process's peak RSS to stderr after the run.
//!
//! `--shards N` switches to the sharded replay model (`teenet-load`'s
//! [`shard`](teenet_load::shard) module): sessions replay independently
//! across N OS threads, and the report is byte-identical for every N.
//! `--bench PATH` additionally times a 1-shard vs N-shard run of that
//! model and *appends* the wall-clock results (plus peak RSS) to the
//! trajectory file at PATH — checked in per PR, so the perf history is
//! visible in-repo. This is the only place wall time is allowed to
//! exist; reports never carry it.

use std::process::ExitCode;
use std::time::Instant;

use teenet_load::scenarios::{by_name, by_name_switchless, NAMES};
use teenet_load::{LoadConfig, LoadMode, LoadRunner};
use teenet_netsim::fault::FaultConfig;
use teenet_netsim::SimDuration;
use teenet_sgx::{SwitchlessConfig, TeeBackend, TransitionMode};

const USAGE: &str = "\
loadgen — stress the paper's applications with synthetic load on virtual time

USAGE:
    loadgen --scenario <attest|tls|tor|bgp|keystore> [OPTIONS]

OPTIONS:
    --scenario <name>      workload to drive (required unless --list)
    --sessions <n>         sessions to run            [default: 1000]
    --seed <n>             seed for all randomness    [default: 1]
    --mode <open|closed>   arrival discipline         [default: open]
    --rate <r>             open-loop arrivals/sec     [default: auto ~50% capacity]
    --concurrency <n>      closed-loop in-flight      [default: 32]
    --workers <n>          server service workers     [default: 4]
    --clients <n>          distinct client nodes      [default: 8]
    --latency-us <n>       one-way link latency, µs   [default: 500]
    --drop <p>             per-packet drop chance     [default: 0]
    --corrupt <p>          per-packet corrupt chance  [default: 0]
    --duplicate <p>        per-packet dup chance      [default: 0]
    --switchless           calibrate with switchless/batched enclave
                           transitions (default: classic EENTER/EEXIT)
    --switchless-workers <n>  host workers servicing the switchless ring
                           (default: 1 — the single-worker ring; extra
                           workers drain the ring mid-ecall but burn
                           spin cycles while idle)
    --spin-budget <k>      idle-spin units each awake worker burns per
                           ecall, charged as normal instructions
                           (default: 0 — spinning is free, as in the
                           single-worker model)
    --backend <sgx|vmtee>  TEE backend to deploy the workload on
                           (default: sgx; vmtee prices a TDX/SEV-SNP-style
                           cost model — no per-call EENTER/EEXIT, VM-exit
                           charges on I/O crossings, PSP attestation)
    --shards <n>           replay with the sharded model across n OS
                           threads (report byte-identical for every n;
                           default: the serial streaming engine)
    --reference            serial runs only: use the retained reference
                           engine (O(sessions) memory) instead of the
                           streaming one — reports are byte-identical
    --rss                  print `peak_rss_bytes=<n>` (VmHWM) to stderr
                           after the run
    --bench <path>         time a 1-shard vs --shards run of the sharded
                           model and append {wall clock, speedup, peak
                           RSS} to the JSON trajectory at <path>
    --json                 emit the byte-stable JSON report instead of text
    --list                 list scenarios and exit
    --help                 show this help
";

struct Args {
    scenario: Option<String>,
    sessions: u64,
    seed: u64,
    mode: String,
    rate: Option<f64>,
    concurrency: u32,
    workers: u32,
    clients: u32,
    latency_us: u64,
    drop: f64,
    corrupt: f64,
    duplicate: f64,
    switchless: bool,
    switchless_workers: usize,
    spin_budget: u32,
    backend: TeeBackend,
    shards: Option<u32>,
    reference: bool,
    rss: bool,
    bench: Option<String>,
    json: bool,
    list: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scenario: None,
            sessions: 1000,
            seed: 1,
            mode: "open".into(),
            rate: None,
            concurrency: 32,
            workers: 4,
            clients: 8,
            latency_us: 500,
            drop: 0.0,
            corrupt: 0.0,
            duplicate: 0.0,
            switchless: false,
            switchless_workers: 1,
            spin_budget: 0,
            backend: TeeBackend::Sgx,
            shards: None,
            reference: false,
            rss: false,
            bench: None,
            json: false,
            list: false,
        }
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--scenario" => args.scenario = Some(value("--scenario")?.clone()),
            "--sessions" => args.sessions = parse(value("--sessions")?, "--sessions")?,
            "--seed" => args.seed = parse(value("--seed")?, "--seed")?,
            "--mode" => args.mode = value("--mode")?.clone(),
            "--rate" => args.rate = Some(parse(value("--rate")?, "--rate")?),
            "--concurrency" => args.concurrency = parse(value("--concurrency")?, "--concurrency")?,
            "--workers" => args.workers = parse(value("--workers")?, "--workers")?,
            "--clients" => args.clients = parse(value("--clients")?, "--clients")?,
            "--latency-us" => args.latency_us = parse(value("--latency-us")?, "--latency-us")?,
            "--drop" => args.drop = parse(value("--drop")?, "--drop")?,
            "--corrupt" => args.corrupt = parse(value("--corrupt")?, "--corrupt")?,
            "--duplicate" => args.duplicate = parse(value("--duplicate")?, "--duplicate")?,
            "--switchless" => args.switchless = true,
            "--switchless-workers" => {
                args.switchless_workers =
                    parse(value("--switchless-workers")?, "--switchless-workers")?
            }
            "--spin-budget" => args.spin_budget = parse(value("--spin-budget")?, "--spin-budget")?,
            "--backend" => {
                let raw = value("--backend")?;
                args.backend = TeeBackend::parse(raw)
                    .ok_or_else(|| format!("bad value for --backend: {raw} (sgx or vmtee)"))?;
            }
            "--shards" => args.shards = Some(parse(value("--shards")?, "--shards")?),
            "--reference" => args.reference = true,
            "--rss" => args.rss = true,
            "--bench" => args.bench = Some(value("--bench")?.clone()),
            "--json" => args.json = true,
            "--list" => args.list = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad value for {flag}: {s}"))
}

/// The process's peak resident set (VmHWM) in bytes, from
/// `/proc/self/status`. `None` where procfs is unavailable.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

fn report_rss() {
    match peak_rss_bytes() {
        Some(b) => eprintln!("peak_rss_bytes={b}"),
        None => eprintln!("peak_rss_bytes=unavailable"),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if args.list {
        for name in NAMES {
            let s = by_name(name, 0).expect("listed scenario exists");
            println!("{:<8} {}", s.name(), s.describe());
        }
        return ExitCode::SUCCESS;
    }

    let Some(name) = args.scenario.as_deref() else {
        eprintln!("error: --scenario is required (one of {NAMES:?})\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    if args.reference && (args.shards.is_some() || args.bench.is_some()) {
        eprintln!("error: --reference is the serial oracle engine; it cannot combine with --shards/--bench");
        return ExitCode::FAILURE;
    }
    let transition_mode = if args.switchless {
        TransitionMode::Switchless
    } else {
        TransitionMode::Classic
    };
    let switchless_config = SwitchlessConfig {
        workers: args.switchless_workers.max(1),
        spin_budget: args.spin_budget,
        ..SwitchlessConfig::default()
    };
    let Some(mut scenario) = by_name_switchless(
        name,
        args.seed,
        transition_mode,
        args.backend,
        switchless_config,
    ) else {
        eprintln!("error: unknown scenario {name:?} (one of {NAMES:?})");
        return ExitCode::FAILURE;
    };

    let mode = match args.mode.as_str() {
        "open" => LoadMode::Open {
            rate_per_sec: args.rate,
        },
        "closed" => LoadMode::Closed {
            concurrency: args.concurrency,
        },
        other => {
            eprintln!("error: --mode must be open or closed, not {other:?}");
            return ExitCode::FAILURE;
        }
    };

    let mut config = LoadConfig::new(args.sessions, args.seed, mode);
    config.workers = args.workers;
    config.clients = args.clients.max(1);
    config.latency = SimDuration::from_micros(args.latency_us);
    config.faults = FaultConfig {
        drop_chance: args.drop,
        corrupt_chance: args.corrupt,
        duplicate_chance: args.duplicate,
        ..FaultConfig::default()
    };

    if !args.json {
        eprintln!(
            "calibrating {name} against real enclaves ({} transitions, {} backend)...",
            transition_mode.as_str(),
            args.backend.as_str(),
        );
    }
    let calibration = scenario.calibrate();
    let runner = LoadRunner::new(config);

    if let Some(path) = args.bench.as_deref() {
        let shards = args.shards.unwrap_or(4).max(1);
        let t0 = Instant::now();
        let baseline = runner.run_sharded(scenario.name(), &calibration, 1);
        let baseline_wall = t0.elapsed();
        let t1 = Instant::now();
        let sharded = runner.run_sharded(scenario.name(), &calibration, shards);
        let sharded_wall = t1.elapsed();
        let identical = baseline.json() == sharded.json();
        let speedup = baseline_wall.as_secs_f64() / sharded_wall.as_secs_f64().max(1e-9);
        let wall_rate = sharded.completed as f64 / sharded_wall.as_secs_f64().max(1e-9);
        let entry = bench_entry(
            scenario.name(),
            &sharded,
            shards,
            baseline_wall.as_nanos() as u64,
            sharded_wall.as_nanos() as u64,
            speedup,
            wall_rate,
            peak_rss_bytes().unwrap_or(0),
            identical,
        );
        if let Err(e) = append_trajectory(path, &entry) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "bench: 1 shard {:.1} ms, {shards} shards {:.1} ms \
             ({speedup:.2}x, {wall_rate:.0} sessions/s wall) -> {path}",
            baseline_wall.as_secs_f64() * 1e3,
            sharded_wall.as_secs_f64() * 1e3,
        );
        if args.json {
            println!("{}", sharded.json());
        } else {
            print!("{}", sharded.text());
        }
        if args.rss {
            report_rss();
        }
        if !identical {
            eprintln!("error: 1-shard and {shards}-shard reports diverged");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    let report = match args.shards {
        Some(n) => {
            let t0 = Instant::now();
            let report = runner.run_sharded(scenario.name(), &calibration, n.max(1));
            if !args.json {
                let wall = t0.elapsed();
                eprintln!(
                    "replayed {} sessions on {} shard(s) in {:.1} ms wall",
                    report.sessions,
                    n.max(1),
                    wall.as_secs_f64() * 1e3,
                );
            }
            report
        }
        None if args.reference => match runner.run_reference(scenario.name(), &calibration) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => runner.run(scenario.name(), &calibration),
    };
    if args.json {
        println!("{}", report.json());
    } else {
        print!("{}", report.text());
    }
    if args.rss {
        report_rss();
    }
    ExitCode::SUCCESS
}

/// One trajectory entry (a single line of JSON): the wall-clock numbers
/// and peak RSS of this bench invocation, none of which are allowed to
/// appear in the deterministic run reports themselves.
#[allow(clippy::too_many_arguments)]
fn bench_entry(
    scenario: &str,
    report: &teenet_load::RunReport,
    shards: u32,
    baseline_wall_ns: u64,
    sharded_wall_ns: u64,
    speedup: f64,
    wall_rate: f64,
    peak_rss: u64,
    identical: bool,
) -> String {
    format!(
        "{{\"scenario\": \"{}\", \"mode\": \"{}\", \"transition_mode\": \"{}\", \
         \"backend\": \"{}\", \"switchless_workers\": {}, \
         \"sessions\": {}, \"completed\": {}, \"shards\": {}, \
         \"baseline_wall_ns\": {}, \"sharded_wall_ns\": {}, \
         \"speedup\": {:.3}, \"wall_sessions_per_sec\": {:.3}, \
         \"peak_rss_bytes\": {}, \"identical\": {}}}",
        scenario,
        report.mode,
        report.transition_mode,
        report.backend.as_str(),
        report.switchless_workers,
        report.sessions,
        report.completed,
        shards,
        baseline_wall_ns,
        sharded_wall_ns,
        speedup,
        wall_rate,
        peak_rss,
        identical,
    )
}

const TRAJECTORY_HEADER: &str = "{\n  \"bench\": \"loadgen\",\n  \"trajectory\": [\n";
const TRAJECTORY_FOOTER: &str = "  ]\n}\n";

/// Appends `entry` to the bench trajectory at `path` (`BENCH_loadgen.json`
/// is checked in, so the per-PR perf history accretes). A missing or
/// foreign-format file is replaced by a fresh one-entry trajectory.
fn append_trajectory(path: &str, entry: &str) -> std::io::Result<()> {
    let body = match std::fs::read_to_string(path) {
        Ok(existing)
            if existing.starts_with(TRAJECTORY_HEADER) && existing.ends_with(TRAJECTORY_FOOTER) =>
        {
            let inner =
                &existing[TRAJECTORY_HEADER.len()..existing.len() - TRAJECTORY_FOOTER.len()];
            let inner = inner.trim_end_matches('\n');
            if inner.is_empty() {
                format!("{TRAJECTORY_HEADER}    {entry}\n{TRAJECTORY_FOOTER}")
            } else {
                format!("{TRAJECTORY_HEADER}{inner},\n    {entry}\n{TRAJECTORY_FOOTER}")
            }
        }
        _ => format!("{TRAJECTORY_HEADER}    {entry}\n{TRAJECTORY_FOOTER}"),
    };
    std::fs::write(path, body)
}
