//! Reproduces **Table 3**: number of remote attestations for each design.
//!
//! | Type                    | paper's formula                    |
//! |-------------------------|------------------------------------|
//! | Inter-domain routing    | number of AS controllers           |
//! | Tor network (Authority) | number of reachable exit nodes     |
//! | Tor network (Client)    | number of authority nodes          |
//! | TLS-aware middlebox     | number of in-path middleboxes      |
//!
//! Run: `cargo run --release -p teenet-bench --bin table3`

use teenet::attest::AttestConfig;
use teenet::ledger::{AttestKind, AttestLedger};
use teenet_crypto::SecureRng;
use teenet_interdomain::{default_policies, SdnDeployment, Topology};
use teenet_mbox::{Action, EndpointRole, MiddleboxChain, MiddleboxHost, ProvisionPolicy, Rule};
use teenet_sgx::EpidGroup;
use teenet_tls::handshake::{handshake, TlsConfig};
use teenet_tor::deployment::{Phase, TorDeployment, TorSpec};

fn main() {
    println!("Table 3: Number of remote attestations for each design");
    println!();
    println!(
        "{:<28} {:>12} {:>12}  note",
        "Type", "parameter", "attestations"
    );

    // Inter-domain routing: one attestation per AS-local controller.
    let n_ases = 30;
    let mut rng = SecureRng::seed_from_u64(2015);
    let topology = Topology::random(n_ases, &mut rng);
    let policies = default_policies(&topology);
    let mut sdn =
        SdnDeployment::new(&topology, &policies, AttestConfig::fast(), 7).expect("deployment");
    sdn.attest_all().expect("attestation");
    println!(
        "{:<28} {:>12} {:>12}  = number of AS controllers",
        "Inter-domain routing",
        n_ases,
        sdn.ledger.total()
    );

    // Tor (authority): authorities attest SGX-capable ORs at admission.
    let mut spec = TorSpec::fast(Phase::IncrementalOrs, 9);
    spec.n_relays = 20;
    spec.n_exits = 8;
    spec.sgx_relay_count = 8; // the reachable exit nodes are SGX-capable
    let mut tor = TorDeployment::build(spec).expect("tor");
    tor.run_admission().expect("admission");
    println!(
        "{:<28} {:>12} {:>12}  = number of reachable exit nodes",
        "Tor network (Authority)",
        8,
        tor.ledger.count(AttestKind::TorRouterAdmission)
    );

    // Tor (client): the client attests each directory authority.
    println!(
        "{:<28} {:>12} {:>12}  = number of authority nodes",
        "Tor network (Client)",
        tor.authorities.len(),
        tor.ledger.count(AttestKind::TorClientCircuit)
    );

    // Middleboxes: one attestation per in-path middlebox.
    let n_mboxes = 3;
    let mut rng = SecureRng::seed_from_u64(40);
    let epid = EpidGroup::new(99, &mut rng).expect("group");
    let mut ledger = AttestLedger::new();
    let hosts: Vec<MiddleboxHost> = (0..n_mboxes)
        .map(|i| {
            MiddleboxHost::deploy(
                &format!("mb{i}"),
                ProvisionPolicy::Unilateral,
                vec![Rule::new(format!("sig-{i}").as_bytes(), Action::Alert)],
                AttestConfig::fast(),
                &epid,
                50 + i as u64,
                &mut rng,
            )
            .expect("middlebox")
        })
        .collect();
    let mut srng = rng.fork(b"server");
    let (client, _server) = handshake(TlsConfig::fast(), &mut rng, &mut srng).expect("tls");
    MiddleboxChain::provision(hosts, EndpointRole::Client, &client, &mut rng, &mut ledger)
        .expect("chain");
    println!(
        "{:<28} {:>12} {:>12}  = number of in-path middleboxes",
        "TLS-aware middlebox",
        n_mboxes,
        ledger.count(AttestKind::MiddleboxProvision)
    );

    println!();
    println!(
        "Repeat contacts avoided re-attestation (SDN deployment): {}",
        sdn.ledger.repeats_avoided()
    );
    println!(
        "Remote attestation occurs only at first contact; counts scale linearly with network size."
    );
}
