//! Ablation: enclave I/O batching (the amortisation Table 2 demonstrates).
//! Reports modelled per-packet instruction cost across batch sizes in
//! addition to the wall-clock of driving the emulator.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use teenet_bench::measure_packet_send;

fn bench_batching(c: &mut Criterion) {
    // Print the modelled amortisation table once (the actual ablation data).
    println!("\nModelled per-packet cost by batch size (normal instructions, with crypto):");
    for batch in [1u32, 2, 5, 10, 20, 50, 100] {
        let counters = measure_packet_send(batch, true, 9);
        println!(
            "  batch {:>3}: {:>6} normal instr/pkt, {:>4} SGX instr total",
            batch,
            counters.normal_instr / batch as u64,
            counters.sgx_instr
        );
    }

    let mut group = c.benchmark_group("io_batching");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1));
    for batch in [1u32, 10, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &n| {
            b.iter(|| black_box(measure_packet_send(n, true, 9)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batching);
criterion_main!(benches);
