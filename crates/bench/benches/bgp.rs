//! Benchmarks of the BGP path computation: the centralized controller
//! algorithm vs the distributed reference simulator, across topology
//! sizes (the computation under Table 4 and Figure 3).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use teenet_crypto::SecureRng;
use teenet_interdomain::refbgp::run_distributed_bgp;
use teenet_interdomain::{compute_routes, default_policies, Topology};

fn bench_bgp(c: &mut Criterion) {
    let mut group = c.benchmark_group("bgp");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [10u32, 20, 30] {
        let mut rng = SecureRng::seed_from_u64(2015);
        let topology = Topology::random(n, &mut rng);
        let policies = default_policies(&topology);
        group.bench_with_input(BenchmarkId::new("centralized", n), &n, |b, _| {
            b.iter(|| compute_routes(black_box(&topology), black_box(&policies)))
        });
        group.bench_with_input(BenchmarkId::new("distributed_oracle", n), &n, |b, _| {
            b.iter(|| run_distributed_bgp(black_box(&topology), black_box(&policies), 7))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bgp);
criterion_main!(benches);
