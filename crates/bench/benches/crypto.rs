//! Microbenchmarks of the from-scratch cryptographic substrate: the
//! primitives whose modelled costs drive every table in the paper.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use teenet_crypto::aes::Aes128;
use teenet_crypto::dh::{DhGroup, DhKeyPair};
use teenet_crypto::schnorr::{SchnorrGroup, SigningKey};
use teenet_crypto::sha256::sha256;
use teenet_crypto::{chacha20, SecureRng};

fn bench_aes(c: &mut Criterion) {
    let mut group = c.benchmark_group("aes128");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1));
    let cipher = Aes128::new(&[7u8; 16]).expect("key");
    group.bench_function("block", |b| {
        let mut block = [0u8; 16];
        b.iter(|| {
            cipher.encrypt_block(black_box(&mut block));
        })
    });
    group.throughput(Throughput::Bytes(1500));
    group.bench_function("ctr_mtu", |b| {
        let nonce = [0u8; 16];
        let mut data = vec![0u8; 1500];
        b.iter(|| cipher.ctr_apply(black_box(&nonce), black_box(&mut data)))
    });
    group.finish();
}

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1));
    group.throughput(Throughput::Bytes(1500));
    let data = vec![0xabu8; 1500];
    group.bench_function("mtu", |b| b.iter(|| sha256(black_box(&data))));
    group.finish();
}

fn bench_chacha(c: &mut Criterion) {
    let mut group = c.benchmark_group("chacha20");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1));
    group.throughput(Throughput::Bytes(1500));
    let key = [1u8; 32];
    let nonce = [2u8; 12];
    let mut data = vec![0u8; 1500];
    group.bench_function("mtu", |b| {
        b.iter(|| chacha20::apply(black_box(&key), black_box(&nonce), 0, black_box(&mut data)))
    });
    group.finish();
}

fn bench_dh(c: &mut Criterion) {
    let mut group = c.benchmark_group("dh1024");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let dh_group = DhGroup::modp1024();
    let mut rng = SecureRng::seed_from_u64(1);
    let alice = DhKeyPair::generate(&dh_group, &mut rng).expect("keypair");
    let bob = DhKeyPair::generate(&dh_group, &mut rng).expect("keypair");
    group.bench_function("keygen", |b| {
        b.iter(|| DhKeyPair::generate(black_box(&dh_group), &mut rng).expect("keypair"))
    });
    group.bench_function("shared_secret", |b| {
        b.iter(|| alice.shared_secret(black_box(&bob.public)).expect("secret"))
    });
    group.finish();
}

fn bench_schnorr(c: &mut Criterion) {
    let mut group = c.benchmark_group("schnorr1024");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let sgroup = SchnorrGroup::standard();
    let mut rng = SecureRng::seed_from_u64(2);
    let key = SigningKey::generate(&sgroup, &mut rng).expect("key");
    let sig = key.sign(b"quote body", &mut rng).expect("sig");
    group.bench_function("sign", |b| {
        b.iter(|| key.sign(black_box(b"quote body"), &mut rng).expect("sig"))
    });
    group.bench_function("verify", |b| {
        b.iter(|| {
            key.public
                .verify(black_box(b"quote body"), &sig)
                .expect("ok")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_aes,
    bench_sha256,
    bench_chacha,
    bench_dh,
    bench_schnorr
);
criterion_main!(benches);
