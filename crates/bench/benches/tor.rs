//! Benchmarks of the Tor simulator: circuit construction, stream
//! exchange, and the Chord-DHT membership lookup of the fully-SGX design
//! (the directory-vs-DHT ablation).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use teenet_tor::deployment::{Phase, TorDeployment, TorSpec};
use teenet_tor::dht::ChordRing;

fn bench_circuit(c: &mut Criterion) {
    let mut group = c.benchmark_group("tor_circuit");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("build_and_exchange_vanilla", |b| {
        b.iter(|| {
            let mut dep =
                TorDeployment::build(TorSpec::fast(Phase::Vanilla, 3)).expect("deployment");
            let admission = dep.run_admission().expect("admission");
            let path = dep.select_path(&admission, None).expect("path");
            dep.exchange(path, b"bench payload").expect("exchange")
        })
    });
    group.finish();
}

fn bench_dht(c: &mut Criterion) {
    let mut group = c.benchmark_group("chord_lookup");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1));
    for n in [16u32, 64, 256] {
        let mut ring = ChordRing::new();
        for i in 0..n {
            ring.join(i);
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut key = 0u64;
            b.iter(|| {
                key = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
                ring.lookup(black_box(0), black_box(key)).expect("lookup")
            })
        });
    }
    group.finish();
}

fn bench_admission_phases(c: &mut Criterion) {
    // Ablation: admission cost by deployment phase. Attestation work grows
    // from zero (vanilla) through directory-only to the fully SGX design.
    let mut group = c.benchmark_group("tor_admission_phase");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (label, phase) in [
        ("vanilla", Phase::Vanilla),
        ("sgx_directory", Phase::SgxDirectory),
        ("incremental_ors", Phase::IncrementalOrs),
        ("full_sgx", Phase::FullSgx),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut dep = TorDeployment::build(TorSpec::fast(phase, 5)).expect("deployment");
                black_box(dep.run_admission().expect("admission"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_circuit, bench_dht, bench_admission_phases);
criterion_main!(benches);
