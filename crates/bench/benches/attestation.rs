//! Benchmarks of the Figure 1 remote-attestation flow (wall-clock of the
//! emulator plus the modelled instruction counts are reported by
//! `--bin table1`; this measures actual execution cost of the protocol).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use teenet::attest::AttestConfig;
use teenet_bench::AttestBench;
use teenet_crypto::dh::DhGroup;

fn bench_attestation(c: &mut Criterion) {
    let mut group = c.benchmark_group("remote_attestation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (label, config) in [
        ("no_dh_1024", AttestConfig::no_dh(DhGroup::modp1024())),
        ("with_dh_768", AttestConfig::fast()),
        ("with_dh_1024", AttestConfig::default()),
    ] {
        group.bench_function(label, |b| {
            let mut bench = AttestBench::new(&config, 1);
            b.iter(|| black_box(bench.run_once(&config)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_attestation);
criterion_main!(benches);
