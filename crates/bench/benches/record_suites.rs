//! Ablation: record-protection cipher suite (AES-128-CTR vs ChaCha20),
//! one of the design choices DESIGN.md calls out. Both protect the same
//! MTU-sized record with HMAC-SHA256.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use teenet_tls::record::{DirectionKeys, RecordProtection};
use teenet_tls::CipherSuite;

fn bench_suites(c: &mut Criterion) {
    let mut group = c.benchmark_group("record_suite");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1));
    group.throughput(Throughput::Bytes(1500));
    let payload = vec![0x5au8; 1500];
    for (label, suite) in [
        ("aes128ctr_hmac", CipherSuite::Aes128CtrHmacSha256),
        ("chacha20_hmac", CipherSuite::ChaCha20HmacSha256),
    ] {
        let keys = DirectionKeys {
            enc_key: vec![7u8; suite.key_len()],
            mac_key: [8u8; 32],
        };
        group.bench_function(format!("{label}/seal"), |b| {
            let mut tx = RecordProtection::new(suite, keys.clone());
            b.iter(|| tx.seal(black_box(&payload)).expect("seal"))
        });
        group.bench_function(format!("{label}/roundtrip"), |b| {
            let mut tx = RecordProtection::new(suite, keys.clone());
            let mut rx = RecordProtection::new(suite, keys.clone());
            b.iter(|| {
                let rec = tx.seal(black_box(&payload)).expect("seal");
                rx.open(&rec).expect("open")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_suites);
criterion_main!(benches);
