//! Ablation: Diffie–Hellman modulus size. DH dominates attestation cost
//! (~90% of cycles in the paper), so the group size is the main cost
//! lever; this measures the real modexp work at 768/1024/1536/2048 bits.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use teenet_crypto::dh::{DhGroup, DhKeyPair};
use teenet_crypto::SecureRng;

fn bench_dh_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("dh_modulus");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for (label, g) in [
        ("768", DhGroup::modp768()),
        ("1024", DhGroup::modp1024()),
        ("1536", DhGroup::modp1536()),
        ("2048", DhGroup::modp2048()),
    ] {
        let mut rng = SecureRng::seed_from_u64(4);
        let alice = DhKeyPair::generate(&g, &mut rng).expect("keypair");
        let bob = DhKeyPair::generate(&g, &mut rng).expect("keypair");
        group.bench_with_input(BenchmarkId::from_parameter(label), &g, |b, _| {
            b.iter(|| alice.shared_secret(black_box(&bob.public)).expect("secret"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dh_sizes);
criterion_main!(benches);
