//! Error type for the TLS-like protocol.

use core::fmt;
use teenet_crypto::CryptoError;

/// Errors from handshake or record processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlsError {
    /// A handshake or record message could not be parsed.
    Malformed(&'static str),
    /// A message arrived out of handshake order.
    UnexpectedMessage {
        /// What the state machine expected.
        expected: &'static str,
    },
    /// The peer offered no mutually supported cipher suite.
    NoCommonSuite,
    /// A Finished MAC or record MAC failed.
    BadMac(&'static str),
    /// Record sequence number overflowed (session must be rekeyed).
    SequenceOverflow,
    /// Underlying crypto error.
    Crypto(CryptoError),
}

impl fmt::Display for TlsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TlsError::Malformed(what) => write!(f, "malformed message: {what}"),
            TlsError::UnexpectedMessage { expected } => {
                write!(f, "unexpected message (expected {expected})")
            }
            TlsError::NoCommonSuite => write!(f, "no common cipher suite"),
            TlsError::BadMac(what) => write!(f, "MAC verification failed: {what}"),
            TlsError::SequenceOverflow => write!(f, "record sequence overflow"),
            TlsError::Crypto(e) => write!(f, "crypto error: {e}"),
        }
    }
}

impl std::error::Error for TlsError {}

impl From<CryptoError> for TlsError {
    fn from(e: CryptoError) -> Self {
        TlsError::Crypto(e)
    }
}

/// Result alias.
pub type Result<T> = core::result::Result<T, TlsError>;
