//! Established sessions and exportable session keys.

use crate::error::Result;
use crate::record::{DirectionKeys, RecordProtection};
use crate::suite::CipherSuite;

/// Which side of the connection an endpoint is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Connection initiator.
    Client,
    /// Connection responder.
    Server,
}

/// The complete keying material of a session.
///
/// This is what an endpoint hands to an attested middlebox over the
/// attestation-bootstrapped secure channel (paper §3.3: "endpoints use a
/// remote attestation to authenticate middleboxes and give their session
/// keys through the secure channel to in-path middleboxes").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionKeys {
    /// Record-protection suite in use.
    pub suite: CipherSuite,
    /// Keys protecting client→server records.
    pub client_write: DirectionKeys,
    /// Keys protecting server→client records.
    pub server_write: DirectionKeys,
}

/// An established TLS-like session.
pub struct TlsSession {
    /// This endpoint's role.
    pub role: Role,
    keys: SessionKeys,
    tx: RecordProtection,
    rx: RecordProtection,
}

impl TlsSession {
    /// Builds a session from negotiated keys.
    pub fn new(role: Role, keys: SessionKeys) -> Self {
        let (tx_keys, rx_keys) = match role {
            Role::Client => (keys.client_write.clone(), keys.server_write.clone()),
            Role::Server => (keys.server_write.clone(), keys.client_write.clone()),
        };
        TlsSession {
            role,
            tx: RecordProtection::new(keys.suite, tx_keys),
            rx: RecordProtection::new(keys.suite, rx_keys),
            keys,
        }
    }

    /// Encrypts application data into a wire record.
    pub fn send(&mut self, plaintext: &[u8]) -> Result<Vec<u8>> {
        self.tx.seal(plaintext)
    }

    /// Decrypts a wire record from the peer.
    pub fn recv(&mut self, record: &[u8]) -> Result<Vec<u8>> {
        self.rx.open(record)
    }

    /// Exports the session keys (for provisioning an attested middlebox).
    pub fn export_keys(&self) -> SessionKeys {
        self.keys.clone()
    }

    /// Sequence numbers (sent, received) so a middlebox can join
    /// mid-stream.
    pub fn seqs(&self) -> (u64, u64) {
        (self.tx.seq(), self.rx.seq())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> SessionKeys {
        SessionKeys {
            suite: CipherSuite::Aes128CtrHmacSha256,
            client_write: DirectionKeys {
                enc_key: vec![1u8; 16],
                mac_key: [2u8; 32],
            },
            server_write: DirectionKeys {
                enc_key: vec![3u8; 16],
                mac_key: [4u8; 32],
            },
        }
    }

    #[test]
    fn full_duplex_exchange() {
        let mut client = TlsSession::new(Role::Client, keys());
        let mut server = TlsSession::new(Role::Server, keys());
        let r = client.send(b"GET /").unwrap();
        assert_eq!(server.recv(&r).unwrap(), b"GET /");
        let r = server.send(b"200 OK").unwrap();
        assert_eq!(client.recv(&r).unwrap(), b"200 OK");
    }

    #[test]
    fn directions_use_distinct_keys() {
        let mut client = TlsSession::new(Role::Client, keys());
        let mut client2 = TlsSession::new(Role::Client, keys());
        let r = client.send(b"hello").unwrap();
        // Another *client* cannot decrypt client-direction traffic with its
        // rx state (which uses server_write keys).
        assert!(client2.recv(&r).is_err());
    }

    #[test]
    fn exported_keys_reconstruct_session() {
        let mut client = TlsSession::new(Role::Client, keys());
        let exported = client.export_keys();
        let mut observer = TlsSession::new(Role::Server, exported);
        let r = client.send(b"inspect me").unwrap();
        assert_eq!(observer.recv(&r).unwrap(), b"inspect me");
    }

    #[test]
    fn seq_tracking() {
        let mut client = TlsSession::new(Role::Client, keys());
        assert_eq!(client.seqs(), (0, 0));
        client.send(b"a").unwrap();
        client.send(b"b").unwrap();
        assert_eq!(client.seqs(), (2, 0));
    }
}
