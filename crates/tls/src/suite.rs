//! Cipher suites for the record layer.

use crate::error::{Result, TlsError};
use teenet_crypto::aes::Aes128;
use teenet_crypto::chacha20;

/// Supported record-protection suites (all encrypt-then-MAC with
/// HMAC-SHA256).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CipherSuite {
    /// AES-128 in CTR mode (the workspace default; the paper's prototype
    /// used AES-128).
    Aes128CtrHmacSha256 = 1,
    /// ChaCha20 stream cipher (for the cipher ablation benchmark).
    ChaCha20HmacSha256 = 2,
}

impl CipherSuite {
    /// Parses the wire byte.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(CipherSuite::Aes128CtrHmacSha256),
            2 => Some(CipherSuite::ChaCha20HmacSha256),
            _ => None,
        }
    }

    /// Encryption key length for this suite.
    pub fn key_len(self) -> usize {
        match self {
            CipherSuite::Aes128CtrHmacSha256 => 16,
            CipherSuite::ChaCha20HmacSha256 => 32,
        }
    }

    /// Applies the suite's keystream to `data` in place; `seq` makes the
    /// per-record nonce unique within a direction.
    pub fn apply_keystream(self, key: &[u8], seq: u64, data: &mut [u8]) -> Result<()> {
        match self {
            CipherSuite::Aes128CtrHmacSha256 => {
                let cipher = Aes128::new(key)?;
                let mut nonce = [0u8; 16];
                nonce[..8].copy_from_slice(&seq.to_be_bytes());
                cipher.ctr_apply(&nonce, data);
                Ok(())
            }
            CipherSuite::ChaCha20HmacSha256 => {
                let mut nonce = [0u8; 12];
                nonce[..8].copy_from_slice(&seq.to_be_bytes());
                chacha20::apply(key, &nonce, 0, data).map_err(TlsError::Crypto)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        for suite in [
            CipherSuite::Aes128CtrHmacSha256,
            CipherSuite::ChaCha20HmacSha256,
        ] {
            assert_eq!(CipherSuite::from_u8(suite as u8), Some(suite));
        }
        assert_eq!(CipherSuite::from_u8(0), None);
        assert_eq!(CipherSuite::from_u8(99), None);
    }

    #[test]
    fn keystream_roundtrip_each_suite() {
        for suite in [
            CipherSuite::Aes128CtrHmacSha256,
            CipherSuite::ChaCha20HmacSha256,
        ] {
            let key = vec![7u8; suite.key_len()];
            let mut data = b"attack at dawn".to_vec();
            suite.apply_keystream(&key, 5, &mut data).unwrap();
            assert_ne!(&data, b"attack at dawn");
            suite.apply_keystream(&key, 5, &mut data).unwrap();
            assert_eq!(&data, b"attack at dawn");
        }
    }

    #[test]
    fn distinct_sequences_distinct_keystreams() {
        let suite = CipherSuite::Aes128CtrHmacSha256;
        let key = vec![7u8; 16];
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        suite.apply_keystream(&key, 1, &mut a).unwrap();
        suite.apply_keystream(&key, 2, &mut b).unwrap();
        assert_ne!(a, b);
    }
}
