//! The record layer: encrypt-then-MAC framing of application data.
//!
//! Each direction has its own write key, MAC key and sequence counter.
//! A record on the wire is `len(u16) ‖ ciphertext ‖ tag(32)`; the MAC
//! covers the implicit sequence number, the length, and the ciphertext, so
//! reordering, truncation and splicing across directions are all caught.

use crate::error::{Result, TlsError};
use crate::suite::CipherSuite;
use teenet_crypto::ct::ct_eq;
use teenet_crypto::hmac::{HmacSha256, TAG_LEN};

/// Keys for one direction of a session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectionKeys {
    /// Encryption key (length per suite).
    pub enc_key: Vec<u8>,
    /// HMAC key.
    pub mac_key: [u8; 32],
}

/// Stateful protector for one direction.
#[derive(Debug, Clone)]
pub struct RecordProtection {
    suite: CipherSuite,
    keys: DirectionKeys,
    seq: u64,
}

impl RecordProtection {
    /// Creates a protector starting at sequence 0.
    pub fn new(suite: CipherSuite, keys: DirectionKeys) -> Self {
        RecordProtection {
            suite,
            keys,
            seq: 0,
        }
    }

    /// Creates a protector at a specific sequence (used by middleboxes
    /// joining mid-stream).
    pub fn with_seq(suite: CipherSuite, keys: DirectionKeys, seq: u64) -> Self {
        RecordProtection { suite, keys, seq }
    }

    /// Current sequence number (next record to be sealed/opened).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The suite this protector uses.
    pub fn suite(&self) -> CipherSuite {
        self.suite
    }

    /// The direction keys (for middleboxes re-sealing rewritten records).
    pub fn keys(&self) -> &DirectionKeys {
        &self.keys
    }

    fn mac(&self, seq: u64, ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let mut mac = HmacSha256::new(&self.keys.mac_key);
        mac.update(&seq.to_be_bytes());
        mac.update(&(ciphertext.len() as u16).to_be_bytes());
        mac.update(ciphertext);
        mac.finalize()
    }

    /// Seals `plaintext` into a wire record, consuming one sequence number.
    pub fn seal(&mut self, plaintext: &[u8]) -> Result<Vec<u8>> {
        if plaintext.len() > u16::MAX as usize {
            return Err(TlsError::Malformed("record too large"));
        }
        let seq = self.seq;
        self.seq = self.seq.checked_add(1).ok_or(TlsError::SequenceOverflow)?;
        let mut ciphertext = plaintext.to_vec();
        self.suite
            .apply_keystream(&self.keys.enc_key, seq, &mut ciphertext)?;
        let tag = self.mac(seq, &ciphertext);
        let mut out = Vec::with_capacity(2 + ciphertext.len() + TAG_LEN);
        out.extend_from_slice(&(ciphertext.len() as u16).to_be_bytes());
        out.extend_from_slice(&ciphertext);
        out.extend_from_slice(&tag);
        Ok(out)
    }

    /// Opens a wire record, consuming one sequence number.
    pub fn open(&mut self, record: &[u8]) -> Result<Vec<u8>> {
        if record.len() < 2 + TAG_LEN {
            return Err(TlsError::Malformed("record truncated"));
        }
        let len = u16::from_be_bytes([record[0], record[1]]) as usize;
        if record.len() != 2 + len + TAG_LEN {
            return Err(TlsError::Malformed("record length mismatch"));
        }
        let ciphertext = record
            .get(2..2 + len)
            .ok_or(TlsError::Malformed("record length mismatch"))?;
        let tag = record
            .get(2 + len..)
            .ok_or(TlsError::Malformed("record length mismatch"))?;
        let seq = self.seq;
        let expected = self.mac(seq, ciphertext);
        if !ct_eq(&expected, tag) {
            return Err(TlsError::BadMac("record"));
        }
        self.seq = self.seq.checked_add(1).ok_or(TlsError::SequenceOverflow)?;
        let mut plaintext = ciphertext.to_vec();
        self.suite
            .apply_keystream(&self.keys.enc_key, seq, &mut plaintext)?;
        Ok(plaintext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> DirectionKeys {
        DirectionKeys {
            enc_key: vec![1u8; 16],
            mac_key: [2u8; 32],
        }
    }

    fn pair() -> (RecordProtection, RecordProtection) {
        (
            RecordProtection::new(CipherSuite::Aes128CtrHmacSha256, keys()),
            RecordProtection::new(CipherSuite::Aes128CtrHmacSha256, keys()),
        )
    }

    #[test]
    fn seal_open_roundtrip() {
        let (mut tx, mut rx) = pair();
        let rec = tx.seal(b"application data").unwrap();
        assert_eq!(rx.open(&rec).unwrap(), b"application data");
    }

    #[test]
    fn sequence_must_match() {
        let (mut tx, mut rx) = pair();
        let r1 = tx.seal(b"one").unwrap();
        let r2 = tx.seal(b"two").unwrap();
        // Reordered delivery fails the MAC.
        assert!(rx.open(&r2).is_err());
        // In-order succeeds.
        assert_eq!(rx.open(&r1).unwrap(), b"one");
        assert_eq!(rx.open(&r2).unwrap(), b"two");
    }

    #[test]
    fn replay_rejected() {
        let (mut tx, mut rx) = pair();
        let rec = tx.seal(b"once").unwrap();
        rx.open(&rec).unwrap();
        assert!(rx.open(&rec).is_err(), "same record cannot open twice");
    }

    #[test]
    fn tamper_detected() {
        let (mut tx, mut rx) = pair();
        let mut rec = tx.seal(b"integrity").unwrap();
        rec[3] ^= 1;
        assert!(rx.open(&rec).is_err());
    }

    #[test]
    fn truncation_detected() {
        let (mut tx, mut rx) = pair();
        let rec = tx.seal(b"whole").unwrap();
        assert!(rx.open(&rec[..rec.len() - 1]).is_err());
        assert!(rx.open(&rec[..3]).is_err());
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let (mut tx, _) = pair();
        let rec = tx.seal(b"super secret payload").unwrap();
        assert!(!rec.windows(6).any(|w| w == b"secret"));
    }

    #[test]
    fn empty_record_ok() {
        let (mut tx, mut rx) = pair();
        let rec = tx.seal(b"").unwrap();
        assert_eq!(rx.open(&rec).unwrap(), b"");
    }

    #[test]
    fn with_seq_joins_midstream() {
        let (mut tx, _) = pair();
        tx.seal(b"a").unwrap();
        tx.seal(b"b").unwrap();
        let rec = tx.seal(b"c").unwrap();
        // A middlebox provisioned with the keys and the current seq can
        // open from here.
        let mut mb = RecordProtection::with_seq(CipherSuite::Aes128CtrHmacSha256, keys(), 2);
        assert_eq!(mb.open(&rec).unwrap(), b"c");
    }

    #[test]
    fn chacha_suite_roundtrip() {
        let keys = DirectionKeys {
            enc_key: vec![1u8; 32],
            mac_key: [2u8; 32],
        };
        let mut tx = RecordProtection::new(CipherSuite::ChaCha20HmacSha256, keys.clone());
        let mut rx = RecordProtection::new(CipherSuite::ChaCha20HmacSha256, keys);
        let rec = tx.seal(b"chacha!").unwrap();
        assert_eq!(rx.open(&rec).unwrap(), b"chacha!");
    }
}
