#![warn(missing_docs)]

//! # teenet-tls
//!
//! A minimal TLS-like protocol — handshake plus record layer — used by the
//! middlebox case study of the HotNets '15 TEE-networking reproduction and
//! as the generic secure transport inside the workspace.
//!
//! * [`handshake`](mod@handshake) — ephemeral-DH handshake with transcript-bound Finished
//!   MACs (endpoint identity comes from SGX attestation, not certificates).
//! * [`record`] — encrypt-then-MAC record protection with per-direction
//!   keys and sequence numbers.
//! * [`session`] — established sessions with **exportable keys**, the hook
//!   the paper's §3.3 middlebox design needs: an endpoint releases
//!   [`session::SessionKeys`] to an attested middlebox over the secure
//!   channel bootstrapped during remote attestation.
//! * [`suite`] — AES-128-CTR (the paper's cipher) and ChaCha20 suites.

pub mod error;
pub mod handshake;
pub mod record;
pub mod session;
pub mod suite;

pub use error::{Result, TlsError};
pub use handshake::{handshake, TlsClient, TlsConfig, TlsServer};
pub use record::{DirectionKeys, RecordProtection};
pub use session::{Role, SessionKeys, TlsSession};
pub use suite::CipherSuite;
