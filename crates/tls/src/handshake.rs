//! The handshake: ephemeral Diffie–Hellman with transcript-bound Finished
//! MACs.
//!
//! Message flow (each message is a byte blob the application transports):
//!
//! ```text
//! Client                                   Server
//!   ClientHello(random, suites)  ───────────▶
//!   ◀─────────── ServerHello(random, suite, dh_pub)
//!   ClientKex(dh_pub, finished)  ───────────▶
//!   ◀─────────────────── ServerFinished(finished)
//! ```
//!
//! Keys derive from HKDF(salt = client_random ‖ server_random,
//! ikm = DH shared secret); the Finished MACs authenticate the transcript,
//! so suite downgrades and substituted key shares are detected. Endpoint
//! *identity* authentication is deliberately out of scope here — in this
//! workspace identity comes from SGX remote attestation (the paper's
//! premise), which wraps or replaces certificate-based auth.

use teenet_crypto::dh::{DhGroup, DhKeyPair};
use teenet_crypto::hkdf;
use teenet_crypto::hmac::hmac_sha256;
use teenet_crypto::sha256::Sha256;
use teenet_crypto::{BigUint, SecureRng};

use crate::error::{Result, TlsError};
use crate::record::DirectionKeys;
use crate::session::{Role, SessionKeys, TlsSession};
use crate::suite::CipherSuite;

const MSG_CLIENT_HELLO: u8 = 1;
const MSG_SERVER_HELLO: u8 = 2;
const MSG_CLIENT_KEX: u8 = 3;
const MSG_SERVER_FINISHED: u8 = 4;

/// Handshake configuration.
#[derive(Clone)]
pub struct TlsConfig {
    /// Cipher suites in preference order.
    pub suites: Vec<CipherSuite>,
    /// Diffie–Hellman group (the paper's evaluation uses 1024-bit).
    pub group: DhGroup,
}

impl Default for TlsConfig {
    fn default() -> Self {
        TlsConfig {
            suites: vec![
                CipherSuite::Aes128CtrHmacSha256,
                CipherSuite::ChaCha20HmacSha256,
            ],
            group: DhGroup::modp1024(),
        }
    }
}

impl TlsConfig {
    /// A configuration with a 768-bit group for fast tests.
    pub fn fast() -> Self {
        TlsConfig {
            group: DhGroup::modp768(),
            ..Default::default()
        }
    }
}

fn derive_keys(
    suite: CipherSuite,
    client_random: &[u8; 32],
    server_random: &[u8; 32],
    shared: &[u8],
) -> Result<(SessionKeys, [u8; 32])> {
    let mut salt = Vec::with_capacity(64);
    salt.extend_from_slice(client_random);
    salt.extend_from_slice(server_random);
    let prk = hkdf::extract(&salt, shared);
    let expand = |info: &[u8], len: usize| -> Result<Vec<u8>> {
        let mut out = vec![0u8; len];
        hkdf::expand(&prk, info, &mut out)?;
        Ok(out)
    };
    let keys = SessionKeys {
        suite,
        client_write: DirectionKeys {
            enc_key: expand(b"client-enc", suite.key_len())?,
            // teenet-analyze: allow(enclave-abort) -- expand returns exactly the 32 bytes requested
            mac_key: expand(b"client-mac", 32)?.try_into().expect("32 bytes"),
        },
        server_write: DirectionKeys {
            enc_key: expand(b"server-enc", suite.key_len())?,
            // teenet-analyze: allow(enclave-abort) -- expand returns exactly the 32 bytes requested
            mac_key: expand(b"server-mac", 32)?.try_into().expect("32 bytes"),
        },
    };
    Ok((keys, prk))
}

fn finished_mac(prk: &[u8; 32], label: &[u8], transcript: &Sha256) -> [u8; 32] {
    let digest = transcript.clone().finalize();
    let mut msg = Vec::with_capacity(label.len() + 32);
    msg.extend_from_slice(label);
    msg.extend_from_slice(&digest);
    hmac_sha256(prk, &msg)
}

/// Client-side handshake state machine.
pub struct TlsClient {
    config: TlsConfig,
    random: [u8; 32],
    keypair: DhKeyPair,
    transcript: Sha256,
    hello_sent: bool,
}

impl TlsClient {
    /// Starts a handshake; returns the state machine and the ClientHello.
    pub fn start(config: TlsConfig, rng: &mut SecureRng) -> Result<(Self, Vec<u8>)> {
        if config.suites.is_empty() {
            return Err(TlsError::NoCommonSuite);
        }
        let mut random = [0u8; 32];
        rng.fill_bytes(&mut random);
        let keypair = DhKeyPair::generate(&config.group, rng)?;
        let mut hello = Vec::with_capacity(34 + config.suites.len());
        hello.push(MSG_CLIENT_HELLO);
        hello.extend_from_slice(&random);
        hello.push(config.suites.len() as u8);
        for s in &config.suites {
            hello.push(*s as u8);
        }
        let mut transcript = Sha256::new();
        transcript.update(&hello);
        Ok((
            TlsClient {
                config,
                random,
                keypair,
                transcript,
                hello_sent: true,
            },
            hello,
        ))
    }

    /// Processes the ServerHello; returns the ClientKex message and the
    /// pending session (finalised when the ServerFinished arrives).
    pub fn on_server_hello(mut self, msg: &[u8]) -> Result<(TlsClientAwaitFinished, Vec<u8>)> {
        if !self.hello_sent {
            return Err(TlsError::UnexpectedMessage {
                expected: "start first",
            });
        }
        if msg.len() < 36 || msg[0] != MSG_SERVER_HELLO {
            return Err(TlsError::Malformed("ServerHello"));
        }
        let mut server_random = [0u8; 32];
        server_random.copy_from_slice(&msg[1..33]);
        let suite = CipherSuite::from_u8(msg[33]).ok_or(TlsError::Malformed("suite byte"))?;
        if !self.config.suites.contains(&suite) {
            return Err(TlsError::NoCommonSuite);
        }
        let dh_len = u16::from_be_bytes([msg[34], msg[35]]) as usize;
        if msg.len() != 36 + dh_len {
            return Err(TlsError::Malformed("ServerHello length"));
        }
        let server_pub = BigUint::from_bytes_be(&msg[36..]);
        self.transcript.update(msg);

        let shared = self.keypair.shared_secret(&server_pub)?;
        let (keys, prk) = derive_keys(suite, &self.random, &server_random, &shared)?;

        // ClientKex: our DH share, then Finished over the transcript
        // including that share.
        let pub_bytes = self.keypair.public_bytes();
        let mut kex = Vec::with_capacity(3 + pub_bytes.len() + 32);
        kex.push(MSG_CLIENT_KEX);
        kex.extend_from_slice(&(pub_bytes.len() as u16).to_be_bytes());
        kex.extend_from_slice(&pub_bytes);
        self.transcript.update(&kex);
        let fin = finished_mac(&prk, b"client finished", &self.transcript);
        kex.extend_from_slice(&fin);

        Ok((
            TlsClientAwaitFinished {
                keys,
                prk,
                transcript: self.transcript,
            },
            kex,
        ))
    }
}

/// Client state after sending ClientKex, awaiting ServerFinished.
pub struct TlsClientAwaitFinished {
    keys: SessionKeys,
    prk: [u8; 32],
    transcript: Sha256,
}

impl TlsClientAwaitFinished {
    /// Verifies the ServerFinished and yields the established session.
    pub fn on_server_finished(self, msg: &[u8]) -> Result<TlsSession> {
        if msg.len() != 33 || msg[0] != MSG_SERVER_FINISHED {
            return Err(TlsError::Malformed("ServerFinished"));
        }
        let expected = finished_mac(&self.prk, b"server finished", &self.transcript);
        if !teenet_crypto::ct::ct_eq(&expected, &msg[1..]) {
            return Err(TlsError::BadMac("server Finished"));
        }
        Ok(TlsSession::new(Role::Client, self.keys))
    }
}

/// Server-side handshake state machine.
pub struct TlsServer {
    config: TlsConfig,
}

impl TlsServer {
    /// Creates a server with the given configuration.
    pub fn new(config: TlsConfig) -> Self {
        TlsServer { config }
    }

    /// Processes a ClientHello; returns the ServerHello and the state
    /// awaiting the ClientKex.
    pub fn on_client_hello(
        &self,
        msg: &[u8],
        rng: &mut SecureRng,
    ) -> Result<(TlsServerAwaitKex, Vec<u8>)> {
        if msg.len() < 34 || msg[0] != MSG_CLIENT_HELLO {
            return Err(TlsError::Malformed("ClientHello"));
        }
        let mut client_random = [0u8; 32];
        client_random.copy_from_slice(&msg[1..33]);
        let n_suites = msg[33] as usize;
        if msg.len() != 34 + n_suites {
            return Err(TlsError::Malformed("ClientHello length"));
        }
        // First client-offered suite we also support (client preference).
        let suite = msg[34..]
            .iter()
            .filter_map(|&b| CipherSuite::from_u8(b))
            .find(|s| self.config.suites.contains(s))
            .ok_or(TlsError::NoCommonSuite)?;

        let mut server_random = [0u8; 32];
        rng.fill_bytes(&mut server_random);
        let keypair = DhKeyPair::generate(&self.config.group, rng)?;
        let pub_bytes = keypair.public_bytes();

        let mut hello = Vec::with_capacity(36 + pub_bytes.len());
        hello.push(MSG_SERVER_HELLO);
        hello.extend_from_slice(&server_random);
        hello.push(suite as u8);
        hello.extend_from_slice(&(pub_bytes.len() as u16).to_be_bytes());
        hello.extend_from_slice(&pub_bytes);

        let mut transcript = Sha256::new();
        transcript.update(msg);
        transcript.update(&hello);

        Ok((
            TlsServerAwaitKex {
                suite,
                client_random,
                server_random,
                keypair,
                transcript,
            },
            hello,
        ))
    }
}

/// Server state awaiting the ClientKex.
pub struct TlsServerAwaitKex {
    suite: CipherSuite,
    client_random: [u8; 32],
    server_random: [u8; 32],
    keypair: DhKeyPair,
    transcript: Sha256,
}

impl TlsServerAwaitKex {
    /// Processes the ClientKex: verifies the client Finished, returns the
    /// ServerFinished message and the established session.
    pub fn on_client_kex(mut self, msg: &[u8]) -> Result<(TlsSession, Vec<u8>)> {
        if msg.len() < 35 || msg[0] != MSG_CLIENT_KEX {
            return Err(TlsError::Malformed("ClientKex"));
        }
        let dh_len = u16::from_be_bytes([msg[1], msg[2]]) as usize;
        if msg.len() != 3 + dh_len + 32 {
            return Err(TlsError::Malformed("ClientKex length"));
        }
        let client_pub = BigUint::from_bytes_be(
            msg.get(3..3 + dh_len)
                .ok_or(TlsError::Malformed("ClientKex length"))?,
        );
        let client_fin = msg
            .get(3 + dh_len..)
            .ok_or(TlsError::Malformed("ClientKex length"))?;

        let shared = self.keypair.shared_secret(&client_pub)?;
        let (keys, prk) = derive_keys(
            self.suite,
            &self.client_random,
            &self.server_random,
            &shared,
        )?;

        // Transcript includes the kex message *without* its Finished MAC.
        self.transcript.update(
            msg.get(..3 + dh_len)
                .ok_or(TlsError::Malformed("ClientKex length"))?,
        );
        let expected = finished_mac(&prk, b"client finished", &self.transcript);
        if !teenet_crypto::ct::ct_eq(&expected, client_fin) {
            return Err(TlsError::BadMac("client Finished"));
        }

        let fin = finished_mac(&prk, b"server finished", &self.transcript);
        let mut out = Vec::with_capacity(33);
        out.push(MSG_SERVER_FINISHED);
        out.extend_from_slice(&fin);
        Ok((TlsSession::new(Role::Server, keys), out))
    }
}

/// Runs a complete in-memory handshake (convenience for tests, examples and
/// the case studies).
pub fn handshake(
    config: TlsConfig,
    client_rng: &mut SecureRng,
    server_rng: &mut SecureRng,
) -> Result<(TlsSession, TlsSession)> {
    let server = TlsServer::new(config.clone());
    let (client, hello) = TlsClient::start(config, client_rng)?;
    let (server_await, server_hello) = server.on_client_hello(&hello, server_rng)?;
    let (client_await, kex) = client.on_server_hello(&server_hello)?;
    let (server_session, server_fin) = server_await.on_client_kex(&kex)?;
    let client_session = client_await.on_server_finished(&server_fin)?;
    Ok((client_session, server_session))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rngs() -> (SecureRng, SecureRng) {
        (SecureRng::seed_from_u64(1), SecureRng::seed_from_u64(2))
    }

    #[test]
    fn full_handshake_and_data() {
        let (mut crng, mut srng) = rngs();
        let (mut c, mut s) = handshake(TlsConfig::fast(), &mut crng, &mut srng).unwrap();
        let rec = c.send(b"GET / HTTP/1.1").unwrap();
        assert_eq!(s.recv(&rec).unwrap(), b"GET / HTTP/1.1");
        let rec = s.send(b"200 OK").unwrap();
        assert_eq!(c.recv(&rec).unwrap(), b"200 OK");
    }

    #[test]
    fn suite_negotiation_picks_client_preference() {
        let (mut crng, mut srng) = rngs();
        let client_cfg = TlsConfig {
            suites: vec![CipherSuite::ChaCha20HmacSha256],
            ..TlsConfig::fast()
        };
        let server = TlsServer::new(TlsConfig::fast());
        let (client, hello) = TlsClient::start(client_cfg, &mut crng).unwrap();
        let (sa, sh) = server.on_client_hello(&hello, &mut srng).unwrap();
        let (ca, kex) = client.on_server_hello(&sh).unwrap();
        let (mut ssess, fin) = sa.on_client_kex(&kex).unwrap();
        let mut csess = ca.on_server_finished(&fin).unwrap();
        assert_eq!(csess.export_keys().suite, CipherSuite::ChaCha20HmacSha256);
        let rec = csess.send(b"x").unwrap();
        assert_eq!(ssess.recv(&rec).unwrap(), b"x");
    }

    #[test]
    fn no_common_suite_fails() {
        let (mut crng, mut srng) = rngs();
        let client_cfg = TlsConfig {
            suites: vec![CipherSuite::ChaCha20HmacSha256],
            ..TlsConfig::fast()
        };
        let server_cfg = TlsConfig {
            suites: vec![CipherSuite::Aes128CtrHmacSha256],
            ..TlsConfig::fast()
        };
        let server = TlsServer::new(server_cfg);
        let (_, hello) = TlsClient::start(client_cfg, &mut crng).unwrap();
        assert!(matches!(
            server.on_client_hello(&hello, &mut srng),
            Err(TlsError::NoCommonSuite)
        ));
    }

    #[test]
    fn tampered_server_hello_detected() {
        // A MITM substituting the server's DH share breaks the Finished
        // exchange (transcript mismatch on one side or shared-secret
        // mismatch feeding into the MACs).
        let (mut crng, mut srng) = rngs();
        let mut mitm_rng = SecureRng::seed_from_u64(666);
        let cfg = TlsConfig::fast();
        let server = TlsServer::new(cfg.clone());
        let (client, hello) = TlsClient::start(cfg.clone(), &mut crng).unwrap();
        let (sa, mut sh) = server.on_client_hello(&hello, &mut srng).unwrap();
        // Replace the server DH public value with the attacker's.
        let attacker = DhKeyPair::generate(&cfg.group, &mut mitm_rng).unwrap();
        let attacker_pub = attacker.public_bytes();
        let dh_off = 36;
        sh[dh_off..].copy_from_slice(&attacker_pub);
        let (_, kex) = client.on_server_hello(&sh).unwrap();
        // Server sees a Finished computed over a different shared secret.
        assert!(sa.on_client_kex(&kex).is_err());
    }

    #[test]
    fn tampered_finished_detected() {
        let (mut crng, mut srng) = rngs();
        let cfg = TlsConfig::fast();
        let server = TlsServer::new(cfg.clone());
        let (client, hello) = TlsClient::start(cfg, &mut crng).unwrap();
        let (sa, sh) = server.on_client_hello(&hello, &mut srng).unwrap();
        let (ca, kex) = client.on_server_hello(&sh).unwrap();
        let (_, mut fin) = sa.on_client_kex(&kex).unwrap();
        fin[5] ^= 1;
        assert!(ca.on_server_finished(&fin).is_err());
    }

    #[test]
    fn malformed_messages_rejected() {
        let (mut crng, mut srng) = rngs();
        let cfg = TlsConfig::fast();
        let server = TlsServer::new(cfg.clone());
        assert!(server.on_client_hello(b"", &mut srng).is_err());
        assert!(server.on_client_hello(&[9u8; 40], &mut srng).is_err());
        let (client, _) = TlsClient::start(cfg, &mut crng).unwrap();
        assert!(client.on_server_hello(&[0u8; 10]).is_err());
    }

    #[test]
    fn sessions_differ_across_handshakes() {
        let (mut crng, mut srng) = rngs();
        let (mut c1, _) = handshake(TlsConfig::fast(), &mut crng, &mut srng).unwrap();
        let (mut c2, _) = handshake(TlsConfig::fast(), &mut crng, &mut srng).unwrap();
        // Same plaintext encrypts differently under independent sessions.
        let r1 = c1.send(b"same").unwrap();
        let r2 = c2.send(b"same").unwrap();
        assert_ne!(r1, r2);
    }
}
