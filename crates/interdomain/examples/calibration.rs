//! Prints the Table 4 calibration numbers for a 30-AS topology
//! (native vs SGX, inter-domain and AS-local controllers).
use std::collections::HashMap;
use teenet::attest::AttestConfig;
use teenet_crypto::SecureRng;
use teenet_interdomain::*;

fn main() {
    let mut rng = SecureRng::seed_from_u64(2015);
    let t = Topology::random(30, &mut rng);
    let p: HashMap<AsId, LocalPolicy> = default_policies(&t);
    let native = run_native(&t, &p);
    println!("work_units(30) = {}", native.outcome.work_units);
    println!(
        "native interdomain = {}M",
        native.interdomain.normal_instr / 1_000_000
    );
    println!(
        "native aslocal avg = {}M",
        native.aslocal_avg().normal_instr / 1_000_000
    );

    let mut dep = SdnDeployment::new(&t, &p, AttestConfig::fast(), 7).unwrap();
    let report = dep.run().unwrap();
    println!(
        "sgx interdomain = {}M normal, {} sgx",
        report.interdomain.normal_instr / 1_000_000,
        report.interdomain.sgx_instr
    );
    println!(
        "sgx aslocal avg = {}M normal, {} sgx",
        report.aslocal_avg().normal_instr / 1_000_000,
        report.aslocal_avg().sgx_instr
    );
    println!("attestations = {}", report.attestations);
    let oi = (report.interdomain.normal_instr as f64 / native.interdomain.normal_instr as f64
        - 1.0)
        * 100.0;
    let oa = (report.aslocal_avg().normal_instr as f64 / native.aslocal_avg().normal_instr as f64
        - 1.0)
        * 100.0;
    println!("overhead interdomain = {oi:.0}%  aslocal = {oa:.0}%");
}
