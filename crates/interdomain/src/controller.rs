//! The two enclave programs of Figure 2: the inter-domain controller and
//! the AS-local controller.
//!
//! "Our core idea is to enclose all private information inside the
//! enclaves and allow all communication to happen between enclaves through
//! a secure channel." (§3.1) The AS-local controller attests the
//! inter-domain controller (whose source all ASes have inspected and built
//! deterministically), then ships its private policy and local topology
//! over the bootstrapped channel; the controller computes routes for
//! everyone, returns each AS its own routes, and answers two-party
//! verification queries.

use std::collections::HashMap;

use teenet::attest::{AttestConfig, AttestRequest, AttestResponse, Challenger, TargetAttestor};
use teenet::channel::SecureChannel;
use teenet::identity::IdentityPolicy;
use teenet_crypto::schnorr::VerifyingKey;
use teenet_crypto::SecureRng;
use teenet_sgx::report::TargetInfo;
use teenet_sgx::{EnclaveCtx, EnclaveProgram, Evidence, Measurement, SgxError};

use crate::compute::{compute_routes, RoutingOutcome};
use crate::cost;
use crate::policy::LocalPolicy;
use crate::predicate::Predicate;
use crate::topology::{AsId, EdgeKind, EdgeList, Topology};
use crate::verify::{VerificationModule, VerifyStatus};
use crate::wire;

/// Ecall function ids of the inter-domain controller.
pub mod ic_fn {
    /// Attestation step 1 (input: AttestRequest ‖ QE measurement).
    pub const ATTEST_BEGIN: u64 = 0;
    /// Attestation step 2 (input: nonce ‖ Evidence).
    pub const ATTEST_FINISH: u64 = 1;
    /// Policy/topology submission (input: nonce ‖ sealed submission).
    pub const SUBMIT: u64 = 2;
    /// Path computation over all submissions (input: empty).
    pub const COMPUTE: u64 = 3;
    /// Fetch an AS's routes (input: nonce) → sealed route list.
    pub const GET_ROUTES: u64 = 4;
    /// Two-party predicate verification (input: nonce ‖ sealed request).
    pub const VERIFY: u64 = 5;
}

/// Ecall function ids of the AS-local controller.
pub mod alc_fn {
    /// Start attestation of the inter-domain controller → AttestRequest.
    pub const CONNECT: u64 = 0;
    /// Finish attestation (input: AttestResponse) → sealed submission.
    pub const COMPLETE: u64 = 1;
    /// Install routes (input: sealed route list) → route count (u32).
    pub const INSTALL_ROUTES: u64 = 2;
    /// Build a sealed verification request (input: party_a ‖ party_b ‖
    /// predicate).
    pub const MAKE_VERIFY: u64 = 3;
    /// Open a sealed verification response → status byte.
    pub const READ_VERIFY: u64 = 4;
    /// Build the sealed policy/topology submission (steady-state work,
    /// separated from COMPLETE so attestation can be excluded from
    /// measurements as the paper does).
    pub const SUBMIT_POLICY: u64 = 5;
}

/// Verification response status bytes.
pub mod verify_status {
    /// Waiting for the counterparty's matching submission.
    pub const PENDING: u8 = 0;
    /// Verified: the promise holds.
    pub const TRUE: u8 = 1;
    /// Verified: the promise is broken.
    pub const FALSE: u8 = 2;
}

type Nonce = [u8; 32];

fn nonce_of(input: &[u8]) -> Result<(Nonce, &[u8]), SgxError> {
    if input.len() < 32 {
        return Err(SgxError::EcallRejected("missing session nonce"));
    }
    let (n, rest) = input.split_at(32);
    let n = n
        .try_into()
        .map_err(|_| SgxError::EcallRejected("bad session nonce"))?;
    Ok((n, rest))
}

struct Session {
    channel: SecureChannel,
    as_id: Option<AsId>,
}

/// The inter-domain controller enclave program.
///
/// Its [`code_image`](EnclaveProgram::code_image) covers the version string
/// and configuration — the "common code base for the inter-domain
/// controller that they agree upon"; any behavioural modification (see
/// [`InterdomainController::leaky_variant`]) changes the measurement and is
/// caught by attestation.
pub struct InterdomainController {
    attest_config: AttestConfig,
    pending_attest: HashMap<Nonce, TargetAttestor>,
    sessions: HashMap<Nonce, Session>,
    submissions: HashMap<AsId, (LocalPolicy, EdgeList)>,
    outcome: Option<RoutingOutcome>,
    verifier: VerificationModule,
    /// Marker used only to build a tampered variant for tests: a
    /// behaviourally different binary with a different measurement.
    leaky: bool,
}

impl InterdomainController {
    /// A fresh controller accepting attestation under `config`.
    pub fn new(config: AttestConfig) -> Self {
        InterdomainController {
            attest_config: config,
            pending_attest: HashMap::new(),
            sessions: HashMap::new(),
            submissions: HashMap::new(),
            outcome: None,
            verifier: VerificationModule::new(),
            leaky: false,
        }
    }

    /// A tampered controller (e.g. one that would exfiltrate policies).
    /// Identical interface, different code image → different MRENCLAVE.
    pub fn leaky_variant(config: AttestConfig) -> Self {
        InterdomainController {
            leaky: true,
            ..Self::new(config)
        }
    }

    /// The measurement ASes agree upon after inspecting + deterministically
    /// building the controller source (what they configure as the expected
    /// identity).
    pub fn expected_measurement(config: &AttestConfig) -> Measurement {
        teenet_sgx::measure_image(&Self::image(false, config))
    }

    fn image(leaky: bool, config: &AttestConfig) -> Vec<u8> {
        let mut image = Vec::new();
        image.extend_from_slice(b"teenet-interdomain-controller-v1");
        image.push(config.with_dh as u8);
        image.extend_from_slice(&(config.group.bits as u32).to_le_bytes());
        if leaky {
            // The extra "exfiltration code" of a tampered build.
            image.extend_from_slice(b"\x90\x90leak-policies-to-sponsor");
        }
        image
    }

    fn session_mut(&mut self, nonce: &Nonce) -> Result<&mut Session, SgxError> {
        self.sessions
            .get_mut(nonce)
            .ok_or(SgxError::EcallRejected("unknown session"))
    }
}

impl EnclaveProgram for InterdomainController {
    fn code_image(&self) -> Vec<u8> {
        Self::image(self.leaky, &self.attest_config)
    }

    fn ecall(
        &mut self,
        ctx: &mut EnclaveCtx<'_>,
        fn_id: u64,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        match fn_id {
            ic_fn::ATTEST_BEGIN => {
                if input.len() < 32 {
                    return Err(SgxError::EcallRejected("short attest input"));
                }
                let (req_bytes, qe) = input.split_at(input.len() - 32);
                let request = AttestRequest::from_bytes(req_bytes)
                    .map_err(|_| SgxError::EcallRejected("bad AttestRequest"))?;
                let qe_target = TargetInfo {
                    mrenclave: Measurement(
                        qe.try_into()
                            .map_err(|_| SgxError::EcallRejected("bad QE measurement"))?,
                    ),
                };
                let (attestor, report) =
                    TargetAttestor::begin(ctx, &request, qe_target, self.attest_config.clone())
                        .map_err(|_| SgxError::EcallRejected("attest begin failed"))?;
                self.pending_attest.insert(request.nonce, attestor);
                Ok(report.to_bytes())
            }
            ic_fn::ATTEST_FINISH => {
                let (nonce, evidence_bytes) = nonce_of(input)?;
                let evidence = Evidence::from_bytes(evidence_bytes)?;
                let attestor = self
                    .pending_attest
                    .remove(&nonce)
                    .ok_or(SgxError::EcallRejected("no pending attestation"))?;
                let (response, channel) = attestor
                    .finish(ctx, evidence)
                    .map_err(|_| SgxError::EcallRejected("attest finish failed"))?;
                let channel =
                    channel.ok_or(SgxError::EcallRejected("attestation without channel"))?;
                self.sessions.insert(
                    nonce,
                    Session {
                        channel,
                        as_id: None,
                    },
                );
                Ok(response.to_bytes())
            }
            ic_fn::SUBMIT => {
                let (nonce, sealed) = nonce_of(input)?;
                let model_aes = ctx.model.aes_key_schedule + ctx.model.aes_bytes(sealed.len());
                ctx.charge(model_aes + ctx.model.hmac_short);
                let session = self.session_mut(&nonce)?;
                let plain = session
                    .channel
                    .open(sealed)
                    .map_err(|_| SgxError::EcallRejected("bad submission message"))?;
                let (policy, edges) = wire::decode_submission(&plain)
                    .ok_or(SgxError::EcallRejected("malformed submission"))?;
                let as_id = policy.as_id;
                session.as_id = Some(as_id);
                // Dynamic allocation: policy + edge storage.
                ctx.malloc(plain.len().max(1))?;
                self.submissions.insert(as_id, (policy, edges));
                Ok(Vec::new())
            }
            ic_fn::COMPUTE => {
                if self.submissions.is_empty() {
                    return Err(SgxError::EcallRejected("no submissions"));
                }
                // Assemble the global topology from local views
                // (deduplicating the two endpoints' reports of each edge).
                let mut edges: Vec<(AsId, AsId, EdgeKind)> = Vec::new();
                let mut policies: HashMap<AsId, LocalPolicy> = HashMap::new();
                let mut max_as = 0u32;
                // Deterministic assembly order regardless of submission
                // arrival (work-unit accounting must be reproducible).
                let mut submissions: Vec<_> = self.submissions.iter().collect();
                submissions.sort_by_key(|(as_id, _)| **as_id);
                for (as_id, (policy, local_edges)) in submissions {
                    policies.insert(*as_id, policy.clone());
                    max_as = max_as.max(as_id.0);
                    for &(a, b, kind) in local_edges {
                        max_as = max_as.max(a.0).max(b.0);
                        if !edges
                            .iter()
                            .any(|&(x, y, _)| (x, y) == (a, b) || (x, y) == (b, a))
                        {
                            edges.push((a, b, kind));
                        }
                    }
                }
                // Every AS on an edge must have submitted a policy;
                // missing ones get Gao–Rexford defaults.
                for i in 0..=max_as {
                    policies
                        .entry(AsId(i))
                        .or_insert_with(|| LocalPolicy::new(AsId(i)));
                }
                let topology = Topology::from_edges(max_as + 1, edges);
                let outcome = compute_routes(&topology, &policies);
                // Application cost: per work unit, native work plus the
                // in-enclave amplification (allocation + marshalling).
                ctx.charge(outcome.work_units * (cost::ROUTE_EVAL_COST + cost::SGX_EVAL_OVERHEAD));
                // Heap growth: each work unit clones candidate routes,
                // path vectors and RIB entries (~560 B), allocated through
                // the in-enclave allocator so page-extension traps are
                // charged as they occur.
                for _ in 0..outcome.work_units {
                    ctx.malloc(cost::HEAP_BYTES_PER_WORK_UNIT)?;
                }
                self.outcome = Some(outcome);
                Ok(Vec::new())
            }
            ic_fn::GET_ROUTES => {
                let (nonce, _) = nonce_of(input)?;
                let outcome = self
                    .outcome
                    .as_ref()
                    .ok_or(SgxError::EcallRejected("routes not computed"))?;
                let session = self
                    .sessions
                    .get_mut(&nonce)
                    .ok_or(SgxError::EcallRejected("unknown session"))?;
                let as_id = session
                    .as_id
                    .ok_or(SgxError::EcallRejected("no submission for session"))?;
                let routes = outcome.routes_of(as_id);
                let plain = wire::encode_routes(&routes);
                ctx.charge(
                    ctx.model.aes_key_schedule
                        + ctx.model.aes_bytes(plain.len())
                        + ctx.model.hmac_short,
                );
                let sealed = session.channel.seal(&plain);
                // Route delivery is enclave I/O.
                ctx.send_packets(&[&sealed], false);
                Ok(sealed)
            }
            ic_fn::VERIFY => {
                let (nonce, sealed) = nonce_of(input)?;
                ctx.charge(ctx.model.aes_key_schedule + ctx.model.aes_bytes(sealed.len()));
                let outcome = self.outcome.as_ref();
                let session = self
                    .sessions
                    .get_mut(&nonce)
                    .ok_or(SgxError::EcallRejected("unknown session"))?;
                let submitter = session
                    .as_id
                    .ok_or(SgxError::EcallRejected("no submission for session"))?;
                let plain = session
                    .channel
                    .open(sealed)
                    .map_err(|_| SgxError::EcallRejected("bad verify message"))?;
                if plain.len() < 8 {
                    return Err(SgxError::EcallRejected("short verify request"));
                }
                let bad = || SgxError::EcallRejected("short verify request");
                let party_a = AsId(u32::from_le_bytes(
                    plain[..4].try_into().map_err(|_| bad())?,
                ));
                let party_b = AsId(u32::from_le_bytes(
                    plain[4..8].try_into().map_err(|_| bad())?,
                ));
                let predicate = Predicate::from_bytes(&plain[8..])
                    .ok_or(SgxError::EcallRejected("malformed predicate"))?;
                let status = self
                    .verifier
                    .submit(submitter, party_a, party_b, &predicate, outcome)
                    .map_err(|_| SgxError::EcallRejected("verification rejected"))?;
                let byte = match status {
                    VerifyStatus::AwaitingCounterparty => verify_status::PENDING,
                    VerifyStatus::Verified(true) => verify_status::TRUE,
                    VerifyStatus::Verified(false) => verify_status::FALSE,
                };
                let session = self.session_mut(&nonce)?;
                Ok(session.channel.seal(&[byte]))
            }
            _ => Err(SgxError::EcallRejected("unknown controller fn")),
        }
    }
}

/// The AS-local controller enclave program.
pub struct AsLocalController {
    /// This AS's identity.
    pub as_id: AsId,
    policy: LocalPolicy,
    local_edges: Vec<(AsId, AsId, EdgeKind)>,
    attest_config: AttestConfig,
    expected_controller: Measurement,
    group_public: VerifyingKey,
    pending: Option<Challenger>,
    channel: Option<SecureChannel>,
    /// Routes received from the controller (readable for tests; stays in
    /// the enclave in the deployment model).
    pub installed_routes: Vec<crate::route::Route>,
}

impl AsLocalController {
    /// Builds the AS-local controller for `policy.as_id`.
    pub fn new(
        policy: LocalPolicy,
        local_edges: Vec<(AsId, AsId, EdgeKind)>,
        attest_config: AttestConfig,
        expected_controller: Measurement,
        group_public: VerifyingKey,
    ) -> Self {
        AsLocalController {
            as_id: policy.as_id,
            policy,
            local_edges,
            attest_config,
            expected_controller,
            group_public,
            pending: None,
            channel: None,
            installed_routes: Vec::new(),
        }
    }

    fn channel_mut(&mut self) -> Result<&mut SecureChannel, SgxError> {
        self.channel
            .as_mut()
            .ok_or(SgxError::EcallRejected("not connected"))
    }
}

impl EnclaveProgram for AsLocalController {
    fn code_image(&self) -> Vec<u8> {
        // The code identity covers version + configuration, not the
        // private policy (which is runtime data, provisioned after
        // attestation — policies must not be inferable from measurements).
        let mut image = Vec::new();
        image.extend_from_slice(b"teenet-aslocal-controller-v1");
        image.push(self.attest_config.with_dh as u8);
        image.extend_from_slice(&(self.attest_config.group.bits as u32).to_le_bytes());
        image.extend_from_slice(&self.expected_controller.0);
        image
    }

    fn ecall(
        &mut self,
        ctx: &mut EnclaveCtx<'_>,
        fn_id: u64,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        match fn_id {
            alc_fn::CONNECT => {
                let mut seed = [0u8; 32];
                ctx.random(&mut seed);
                let mut rng = SecureRng::from_seed(&seed);
                let (challenger, request) = Challenger::start(
                    IdentityPolicy::Mrenclave(self.expected_controller),
                    self.attest_config.clone(),
                    ctx.model,
                    &mut rng,
                )
                .map_err(|_| SgxError::EcallRejected("challenger start failed"))?;
                self.pending = Some(challenger);
                Ok(request.to_bytes())
            }
            alc_fn::COMPLETE => {
                let response = AttestResponse::from_bytes(input)
                    .map_err(|_| SgxError::EcallRejected("bad AttestResponse"))?;
                let challenger = self
                    .pending
                    .take()
                    .ok_or(SgxError::EcallRejected("no pending attestation"))?;
                let outcome = challenger
                    .verify(&response, &self.group_public, None)
                    .map_err(|_| SgxError::EcallRejected("controller attestation failed"))?;
                // The challenger's crypto work happened inside this enclave.
                ctx.counters.merge(outcome.counters);
                let channel = outcome
                    .channel
                    .ok_or(SgxError::EcallRejected("no channel"))?;
                self.channel = Some(channel);
                Ok(Vec::new())
            }
            alc_fn::SUBMIT_POLICY => {
                ctx.charge(cost::ASLOCAL_BASE_COST);
                let plain = wire::encode_submission(&self.policy, &self.local_edges);
                ctx.charge(
                    ctx.model.aes_key_schedule
                        + ctx.model.aes_bytes(plain.len())
                        + ctx.model.hmac_short,
                );
                let channel = self.channel_mut()?;
                let sealed = channel.seal(&plain);
                ctx.send_packets(&[&sealed], false);
                Ok(sealed)
            }
            alc_fn::INSTALL_ROUTES => {
                let aes = ctx.model.aes_key_schedule + ctx.model.aes_bytes(input.len());
                ctx.charge(aes + ctx.model.hmac_short);
                let channel = self.channel_mut()?;
                let plain = channel
                    .open(input)
                    .map_err(|_| SgxError::EcallRejected("bad route message"))?;
                let routes = wire::decode_routes(&plain)
                    .ok_or(SgxError::EcallRejected("malformed routes"))?;
                // FIB installation: the dominant steady-state cost, with
                // the in-enclave amplification per route.
                ctx.charge(
                    routes.len() as u64 * (cost::FIB_INSTALL_COST + cost::ASLOCAL_SGX_PER_ROUTE),
                );
                for _ in 0..routes.len() {
                    ctx.malloc(cost::HEAP_BYTES_PER_ROUTE)?;
                }
                let count = routes.len() as u32;
                self.installed_routes = routes;
                Ok(count.to_le_bytes().to_vec())
            }
            alc_fn::MAKE_VERIFY => {
                if input.len() < 8 {
                    return Err(SgxError::EcallRejected("short verify request"));
                }
                let channel = self.channel_mut()?;
                Ok(channel.seal(input))
            }
            alc_fn::READ_VERIFY => {
                let channel = self.channel_mut()?;
                let plain = channel
                    .open(input)
                    .map_err(|_| SgxError::EcallRejected("bad verify response"))?;
                if plain.len() != 1 {
                    return Err(SgxError::EcallRejected("malformed verify response"));
                }
                Ok(plain)
            }
            _ => Err(SgxError::EcallRejected("unknown AS-local fn")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teenet_crypto::dh::DhGroup;

    #[test]
    fn controller_images_differ_when_tampered() {
        let cfg = AttestConfig::fast();
        let honest = InterdomainController::new(cfg.clone());
        let leaky = InterdomainController::leaky_variant(cfg);
        assert_ne!(honest.code_image(), leaky.code_image());
    }

    #[test]
    fn controller_image_covers_config() {
        let a = InterdomainController::new(AttestConfig::fast());
        let b = InterdomainController::new(AttestConfig {
            with_dh: true,
            group: DhGroup::modp1024(),
        });
        assert_ne!(a.code_image(), b.code_image());
    }

    #[test]
    fn expected_measurement_matches_honest_build() {
        let cfg = AttestConfig::fast();
        let honest = InterdomainController::new(cfg.clone());
        assert_eq!(
            teenet_sgx::measure_image(&honest.code_image()),
            InterdomainController::expected_measurement(&cfg)
        );
        let leaky = InterdomainController::leaky_variant(cfg.clone());
        assert_ne!(
            teenet_sgx::measure_image(&leaky.code_image()),
            InterdomainController::expected_measurement(&cfg)
        );
    }

    #[test]
    fn aslocal_image_excludes_policy() {
        // Two ASes with different policies but the same configuration run
        // the same binary — measurements must match (policies are data).
        let cfg = AttestConfig::fast();
        let expected = InterdomainController::expected_measurement(&cfg);
        let mut rng = SecureRng::seed_from_u64(1);
        let group = teenet_crypto::schnorr::SchnorrGroup::small();
        let key = teenet_crypto::schnorr::SigningKey::generate(&group, &mut rng).unwrap();
        let mut p1 = LocalPolicy::new(AsId(1));
        p1.pref_override.insert(AsId(2), 999);
        let p2 = LocalPolicy::new(AsId(2));
        let a = AsLocalController::new(p1, vec![], cfg.clone(), expected, key.verifying_key());
        let b = AsLocalController::new(p2, vec![], cfg, expected, key.verifying_key());
        assert_eq!(a.code_image(), b.code_image());
    }
}
