//! AS-level topologies with business relationships.
//!
//! The paper's evaluation "create\[s\] a random topology with 30 ASes with
//! hypothetical business relationships" and models "export rules according
//! to their business relationship (i.e., peer, customer, and provider)"
//! (§5). The generator here builds the classic three-tier hierarchy: a
//! clique of tier-1 providers, a middle tier multi-homed to tier-1s with
//! occasional lateral peerings, and stub ASes buying transit from the
//! middle tier.

use teenet_crypto::SecureRng;

/// Identifies an autonomous system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AsId(pub u32);

impl core::fmt::Display for AsId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// The business relationship a neighbor has *to me*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Relationship {
    /// The neighbor pays me for transit.
    Customer,
    /// Settlement-free peer.
    Peer,
    /// I pay the neighbor for transit.
    Provider,
}

/// An undirected adjacency with its business meaning.
///
/// `(a, b, kind)` where for [`EdgeKind::TransitTo`] `a` is the provider of
/// `b`, and for [`EdgeKind::Peering`] the two are symmetric peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// First AS sells transit to the second.
    TransitTo,
    /// Settlement-free peering.
    Peering,
}

/// An adjacency list of business-relationship edges.
pub type EdgeList = Vec<(AsId, AsId, EdgeKind)>;

/// An AS-level topology.
#[derive(Debug, Clone)]
pub struct Topology {
    n: u32,
    edges: Vec<(AsId, AsId, EdgeKind)>,
}

impl Topology {
    /// Builds a topology from explicit edges.
    pub fn from_edges(n: u32, edges: Vec<(AsId, AsId, EdgeKind)>) -> Self {
        debug_assert!(edges.iter().all(|&(a, b, _)| a.0 < n && b.0 < n && a != b));
        Topology { n, edges }
    }

    /// Number of ASes.
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// True if the topology has no ASes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// All AS ids.
    pub fn ases(&self) -> impl Iterator<Item = AsId> + '_ {
        (0..self.n).map(AsId)
    }

    /// All edges.
    pub fn edges(&self) -> &[(AsId, AsId, EdgeKind)] {
        &self.edges
    }

    /// Neighbors of `asn` with their relationship *to* `asn`.
    pub fn neighbors(&self, asn: AsId) -> Vec<(AsId, Relationship)> {
        let mut out = Vec::new();
        for &(a, b, kind) in &self.edges {
            match kind {
                EdgeKind::TransitTo => {
                    if a == asn {
                        out.push((b, Relationship::Customer));
                    } else if b == asn {
                        out.push((a, Relationship::Provider));
                    }
                }
                EdgeKind::Peering => {
                    if a == asn {
                        out.push((b, Relationship::Peer));
                    } else if b == asn {
                        out.push((a, Relationship::Peer));
                    }
                }
            }
        }
        out
    }

    /// Relationship of `neighbor` to `asn`, if adjacent.
    pub fn relationship(&self, asn: AsId, neighbor: AsId) -> Option<Relationship> {
        self.neighbors(asn)
            .into_iter()
            .find(|&(id, _)| id == neighbor)
            .map(|(_, rel)| rel)
    }

    /// Generates a random three-tier topology with `n ≥ 3` ASes.
    ///
    /// Tier sizes: ~10% tier-1 (min 2), ~30% middle, the rest stubs.
    /// Every non-tier-1 AS gets 1–2 providers one tier up; middle-tier
    /// ASes peer laterally with probability 0.2.
    pub fn random(n: u32, rng: &mut SecureRng) -> Self {
        assert!(n >= 3, "need at least 3 ASes");
        let t1 = (n / 10).max(2);
        let mid_end = t1 + (n * 3 / 10).max(1);
        let mut edges = Vec::new();

        // Tier-1 full-mesh peering.
        for i in 0..t1 {
            for j in (i + 1)..t1 {
                edges.push((AsId(i), AsId(j), EdgeKind::Peering));
            }
        }
        // Middle tier: 1-2 tier-1 providers each, lateral peerings.
        for i in t1..mid_end.min(n) {
            let p1 = rng.gen_range(t1 as u64) as u32;
            edges.push((AsId(p1), AsId(i), EdgeKind::TransitTo));
            if t1 > 1 && rng.gen_bool(0.5) {
                let mut p2 = rng.gen_range(t1 as u64) as u32;
                if p2 == p1 {
                    p2 = (p2 + 1) % t1;
                }
                edges.push((AsId(p2), AsId(i), EdgeKind::TransitTo));
            }
        }
        for i in t1..mid_end.min(n) {
            for j in (i + 1)..mid_end.min(n) {
                if rng.gen_bool(0.2) {
                    edges.push((AsId(i), AsId(j), EdgeKind::Peering));
                }
            }
        }
        // Stubs: 1-2 middle-tier (or tier-1) providers each.
        for i in mid_end.min(n)..n {
            let upper = mid_end.min(n).max(1);
            let p1 = rng.gen_range(upper as u64) as u32;
            edges.push((AsId(p1), AsId(i), EdgeKind::TransitTo));
            if rng.gen_bool(0.4) {
                let mut p2 = rng.gen_range(upper as u64) as u32;
                if p2 == p1 {
                    p2 = (p2 + 1) % upper;
                }
                if p2 != p1 {
                    edges.push((AsId(p2), AsId(i), EdgeKind::TransitTo));
                }
            }
        }
        Topology { n, edges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Topology {
        // 0 and 1 are tier-1 peers; both sell transit to 2; 2 sells to 3.
        Topology::from_edges(
            4,
            vec![
                (AsId(0), AsId(1), EdgeKind::Peering),
                (AsId(0), AsId(2), EdgeKind::TransitTo),
                (AsId(1), AsId(2), EdgeKind::TransitTo),
                (AsId(2), AsId(3), EdgeKind::TransitTo),
            ],
        )
    }

    #[test]
    fn relationships_are_consistent() {
        let t = diamond();
        assert_eq!(t.relationship(AsId(0), AsId(1)), Some(Relationship::Peer));
        assert_eq!(t.relationship(AsId(1), AsId(0)), Some(Relationship::Peer));
        assert_eq!(
            t.relationship(AsId(0), AsId(2)),
            Some(Relationship::Customer)
        );
        assert_eq!(
            t.relationship(AsId(2), AsId(0)),
            Some(Relationship::Provider)
        );
        assert_eq!(t.relationship(AsId(0), AsId(3)), None);
    }

    #[test]
    fn neighbors_enumeration() {
        let t = diamond();
        let n2 = t.neighbors(AsId(2));
        assert_eq!(n2.len(), 3);
        assert!(n2.contains(&(AsId(0), Relationship::Provider)));
        assert!(n2.contains(&(AsId(1), Relationship::Provider)));
        assert!(n2.contains(&(AsId(3), Relationship::Customer)));
    }

    #[test]
    fn random_topology_is_connected_via_providers() {
        // Every non-tier-1 AS must have at least one provider, so every AS
        // can reach tier 1 by walking up provider edges.
        let mut rng = SecureRng::seed_from_u64(42);
        for n in [3u32, 10, 30, 50] {
            let t = Topology::random(n, &mut rng);
            let t1 = (n / 10).max(2);
            for asn in t.ases().skip(t1 as usize) {
                let has_provider = t
                    .neighbors(asn)
                    .iter()
                    .any(|&(_, rel)| rel == Relationship::Provider);
                assert!(has_provider, "{asn} has no provider (n={n})");
            }
        }
    }

    #[test]
    fn random_topology_deterministic_per_seed() {
        let a = Topology::random(30, &mut SecureRng::seed_from_u64(7));
        let b = Topology::random(30, &mut SecureRng::seed_from_u64(7));
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn random_topologies_differ_across_seeds() {
        let a = Topology::random(30, &mut SecureRng::seed_from_u64(1));
        let b = Topology::random(30, &mut SecureRng::seed_from_u64(2));
        assert_ne!(a.edges(), b.edges());
    }

    #[test]
    fn no_self_loops() {
        let mut rng = SecureRng::seed_from_u64(3);
        let t = Topology::random(40, &mut rng);
        assert!(t.edges().iter().all(|&(a, b, _)| a != b));
    }
}
