//! Cost constants for the routing workload (Table 4 / Figure 3 model).
//!
//! The SGX substrate's `teenet_sgx::cost` covers the generic enclave costs
//! (I/O, crypto, allocation). This module adds the *application* work:
//! what one BGP work unit and one installed route cost in modelled normal
//! instructions, plus the per-unit enclave amplification.
//!
//! Calibration (same discipline as the substrate model — fixed against the
//! paper's Table 4 and then reused unchanged everywhere):
//!
//! * A 30-AS random topology performs ≈40 K BGP work units.
//!   `ROUTE_EVAL_COST` is set so the native inter-domain controller lands
//!   near the paper's 74 M normal instructions.
//! * Inside the enclave every work unit additionally pays a small heap
//!   allocation (candidate route clone) plus marshalling — the paper
//!   attributes the overhead to "in-enclave I/O and dynamic memory
//!   allocation that cause context switches" (§5) and reports 82 % extra
//!   instructions (Table 4) / 90 % extra cycles (Figure 3).
//! * An AS-local controller natively spends ≈13 M instructions, dominated
//!   by per-route FIB installation (`FIB_INSTALL_COST`), and 69 % more
//!   inside the enclave (`ASLOCAL_SGX_PER_ROUTE` amplification: in-enclave
//!   socket reads and allocation-heavy parsing of each route).

/// Normal instructions per BGP work unit (announcement processed or
/// candidate route evaluated) — native and enclave alike.
pub const ROUTE_EVAL_COST: u64 = 17_300;

/// Extra normal instructions per work unit when computing inside the
/// enclave (allocation + marshalling amplification).
pub const SGX_EVAL_OVERHEAD: u64 = 11_400;

/// Heap bytes one BGP work unit allocates inside the enclave (candidate
/// route clones, path vectors, RIB entries). Drives the page-extension
/// traps that dominate the controller's SGX-instruction count (Table 4
/// reports 1448 SGX(U) instructions for the 30-AS run).
pub const HEAP_BYTES_PER_WORK_UNIT: usize = 560;

/// Heap bytes one installed route allocates in the AS-local controller's
/// FIB (Table 4 reports 42 SGX(U) instructions per AS-local controller).
pub const HEAP_BYTES_PER_ROUTE: usize = 2_048;

/// AS-local controller: fixed per-run cost (policy preparation, session
/// bookkeeping).
pub const ASLOCAL_BASE_COST: u64 = 1_400_000;

/// AS-local controller: native per-route FIB installation cost.
pub const FIB_INSTALL_COST: u64 = 400_000;

/// AS-local controller: extra per-route cost inside the enclave.
pub const ASLOCAL_SGX_PER_ROUTE: u64 = 370_000;

// The enclave amplification must stay below 1x native so the Table 4
// ratio lands near the paper's ~82% (I/O and allocation never dominate
// the computation itself). Checked at compile time.
const _: () = assert!(SGX_EVAL_OVERHEAD < ROUTE_EVAL_COST);
const _: () = assert!(ASLOCAL_SGX_PER_ROUTE < FIB_INSTALL_COST);
