//! The BGP announcement-churn workload as an [`EnclaveService`]: one
//! session is one AS's round of churn — submit the private policy to the
//! controller enclave, have the controller recompute, and pull the
//! freshly sealed routes back.
//!
//! Setup is the measured cost of bootstrapping: loading all enclaves and
//! mutually attesting every AS-local controller to the inter-domain
//! controller, plus one warm-up round (submit, compute, distribute) so
//! steady-state measurements see a warmed controller.
//!
//! Under [`TransitionMode::Switchless`] the controller's and every AS's
//! sealed-blob sends (ocall-shaped host crossings) ride the shared call
//! ring during steady state; setup (attestation, initial convergence)
//! always runs classic.

use std::collections::HashMap;

use teenet::AttestConfig;
use teenet_app::{
    AppError, EnclaveService, ServiceEnv, StepExecution, StepOutcome, StepRequest, StepSpec,
};
use teenet_crypto::SecureRng;
use teenet_sgx::cost::Counters;
use teenet_sgx::{SgxError, SwitchlessConfig, TransitionMode, TransitionStats};

use crate::deployment::{Result, SdnDeployment};
use crate::topology::Topology;

pub use teenet_app::{WorkProfile, WorkStep};

/// The BGP announcement-churn workload on a random three-tier topology of
/// `n_ases` ASes, driven through [`teenet_app::AppHarness`].
pub struct BgpService {
    n_ases: u32,
    deployed: Option<SdnDeployment>,
}

impl BgpService {
    /// A service over a random topology of `n_ases` ASes (at least 3).
    pub fn new(n_ases: u32) -> Self {
        BgpService {
            n_ases,
            deployed: None,
        }
    }

    fn state(&self) -> Result<&SdnDeployment> {
        self.deployed
            .as_ref()
            .ok_or(SgxError::EcallRejected("bgp service not deployed"))
    }
}

impl Default for BgpService {
    fn default() -> Self {
        BgpService::new(8)
    }
}

impl EnclaveService for BgpService {
    type Error = SgxError;

    fn name(&self) -> &'static str {
        "bgp"
    }

    fn describe(&self) -> &'static str {
        "BGP announcement churn against the SGX inter-domain controller"
    }

    fn deploy(&mut self, env: &mut ServiceEnv) -> Result<()> {
        if self.n_ases < 3 {
            return Err(AppError::Calibration("need at least 3 ASes for a topology").into());
        }
        let mut rng = SecureRng::seed_from_u64(env.seed ^ 0x0062_6770);
        let topology = Topology::random(self.n_ases, &mut rng);
        let policies = HashMap::new();
        self.deployed = Some(SdnDeployment::with_backend(
            &topology,
            &policies,
            AttestConfig::fast(),
            env.seed,
            env.backend,
        )?);
        Ok(())
    }

    /// Mutual attestation of every AS to the controller, then one warm-up
    /// round (submit, compute, distribute) so steady-state measurements
    /// see a warmed controller.
    fn provision(&mut self, _env: &mut ServiceEnv) -> Result<()> {
        let dep = self
            .deployed
            .as_mut()
            .ok_or(SgxError::EcallRejected("bgp service not deployed"))?;
        dep.attest_all()?;
        dep.submit_all()?;
        dep.compute()?;
        dep.distribute_routes()?;
        Ok(())
    }

    fn set_transition_mode(
        &mut self,
        mode: TransitionMode,
        switchless: SwitchlessConfig,
    ) -> Result<()> {
        self.deployed
            .as_mut()
            .ok_or(SgxError::EcallRejected("bgp service not deployed"))?
            .set_transition_mode(mode, switchless)
    }

    fn server_counters(&self) -> Result<Counters> {
        Ok(self.state()?.controller_platform.total_counters())
    }

    /// The session's client is AS 0; steady-state steps only touch that
    /// platform, so the fleet-wide sum meters exactly the subject AS.
    fn client_counters(&self) -> Result<Counters> {
        let dep = self.state()?;
        let mut total = Counters::new();
        for p in &dep.as_platforms {
            total.merge(p.total_counters());
        }
        Ok(total)
    }

    fn transition_stats(&self) -> Result<TransitionStats> {
        self.state()?.transition_stats()
    }

    fn session_script(&self, _env: &ServiceEnv) -> Result<Vec<StepSpec>> {
        Ok(vec![
            StepSpec::repeat("announce", 1),
            StepSpec::repeat("pull", 1),
        ])
    }

    fn run_step(
        &mut self,
        spec: &StepSpec,
        _request: StepRequest,
        _env: &mut ServiceEnv,
    ) -> Result<StepOutcome> {
        let dep = self
            .deployed
            .as_mut()
            .ok_or(SgxError::EcallRejected("bgp service not deployed"))?;
        // Steady state: AS 0 re-announces and the controller recomputes.
        let subject = 0usize;
        match spec.name {
            "announce" => {
                let announce_wire = dep.submit_one(subject)?;
                dep.compute()?;
                Ok(StepOutcome::Executed(StepExecution {
                    request_bytes: announce_wire,
                    // Message 5 is the controller's short sealed ack.
                    response_bytes: 64,
                    client: Counters::new(),
                }))
            }
            "pull" => {
                let (pull_wire, installed) = dep.pull_one(subject)?;
                if installed == 0 {
                    return Err(SgxError::EcallRejected(
                        "calibration AS must install routes",
                    ));
                }
                Ok(StepOutcome::Executed(StepExecution {
                    // Message 6 is the AS's nonce-bearing pull request.
                    request_bytes: 32,
                    response_bytes: pull_wire,
                    client: Counters::new(),
                }))
            }
            _ => Err(SgxError::EcallRejected("unknown bgp step")),
        }
    }
}

/// `Counters` total across both steps of one session (convenience for
/// tests and reports).
pub fn session_total(profile: &WorkProfile) -> Counters {
    let mut total = Counters::new();
    for s in &profile.steps {
        total.merge(s.client);
        total.merge(s.server);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use teenet_app::AppHarness;

    fn calibrate(seed: u64, n_ases: u32, mode: TransitionMode) -> Result<WorkProfile> {
        AppHarness::new(seed, mode).calibrate(&mut BgpService::new(n_ases))
    }

    #[test]
    fn bgp_profile_shape() {
        let profile = calibrate(21, 8, TransitionMode::Classic).unwrap();
        assert_eq!(profile.steps.len(), 2);
        let announce = &profile.steps[0];
        let pull = &profile.steps[1];
        // The announce step includes a full path recomputation inside the
        // controller enclave — it must dominate the pull.
        assert!(announce.server.normal_instr > pull.server.normal_instr);
        assert!(announce.server.sgx_instr > 0);
        assert!(pull.client.sgx_instr > 0);
        // Sealed blobs have real sizes.
        assert!(announce.request_bytes > 0);
        assert!(pull.response_bytes > 0);
        // Bootstrapping (attestation of every AS) dwarfs one churn round.
        assert!(profile.setup.normal_instr > session_total(&profile).normal_instr);
    }

    #[test]
    fn tiny_topology_is_a_domain_error() {
        let err = calibrate(21, 2, TransitionMode::Classic).unwrap_err();
        assert_eq!(
            err,
            SgxError::EcallRejected("need at least 3 ASes for a topology")
        );
    }

    #[test]
    fn announcement_batch_amortises_controller_entries() {
        let mut rng = SecureRng::seed_from_u64(99);
        let topology = Topology::random(6, &mut rng);
        let policies = HashMap::new();
        let mut dep = SdnDeployment::new(&topology, &policies, AttestConfig::fast(), 99).unwrap();
        dep.attest_all().unwrap();
        let t0 = dep.transition_stats().unwrap();
        dep.submit_batch(&[0, 1, 2]).unwrap();
        let batch = dep.transition_stats().unwrap().since(t0);
        let t1 = dep.transition_stats().unwrap();
        for i in 3..6 {
            dep.submit_one(i).unwrap();
        }
        let sequential = dep.transition_stats().unwrap().since(t1);
        assert!(
            batch.taken < sequential.taken,
            "one controller entry for the whole batch vs one per announcement"
        );
        assert_eq!(batch.elided, 2, "N-1 controller entries amortised away");
    }
}
