//! Calibration hook for the load generator: one session is one AS's
//! round of BGP announcement churn — submit the private policy to the
//! controller enclave, have the controller recompute, and pull the
//! freshly sealed routes back.

use std::collections::HashMap;

use teenet::driver::{WorkProfile, WorkStep};
use teenet::AttestConfig;
use teenet_crypto::SecureRng;
use teenet_sgx::cost::Counters;
use teenet_sgx::TransitionMode;

use crate::deployment::{Result, SdnDeployment};
use crate::topology::Topology;

/// Calibrates the BGP announcement-churn workload on a random three-tier
/// topology of `n_ases` ASes.
///
/// Setup is the measured cost of bootstrapping: loading all enclaves and
/// mutually attesting every AS-local controller to the inter-domain
/// controller, plus one warm-up round (submit, compute, distribute) so
/// steady-state measurements see a warmed controller. One session is one
/// AS announcing ("announce": sealed policy submission, with the
/// controller recomputing paths) and pulling its table ("pull": sealed
/// route download and install).
pub fn calibrate_bgp(seed: u64, n_ases: u32) -> Result<WorkProfile> {
    calibrate_bgp_mode(seed, n_ases, TransitionMode::Classic)
}

/// [`calibrate_bgp`] with an explicit transition mode.
///
/// Under [`TransitionMode::Switchless`] the controller's and every AS's
/// sealed-blob sends (ocall-shaped host crossings) ride the shared call
/// ring during steady state; setup (attestation, initial convergence)
/// always runs classic.
pub fn calibrate_bgp_mode(seed: u64, n_ases: u32, mode: TransitionMode) -> Result<WorkProfile> {
    assert!(n_ases >= 3, "need at least 3 ASes for a topology");
    let mut rng = SecureRng::seed_from_u64(seed ^ 0x0062_6770);
    let topology = Topology::random(n_ases, &mut rng);
    let policies = HashMap::new();
    let mut dep = SdnDeployment::new(&topology, &policies, AttestConfig::fast(), seed)?;
    dep.attest_all()?;
    dep.submit_all()?;
    dep.compute()?;
    dep.distribute_routes()?;

    let mut setup = dep.controller_platform.total_counters();
    for p in &dep.as_platforms {
        setup.merge(p.total_counters());
    }
    dep.set_transition_mode(mode)?;

    // Steady state: AS 0 re-announces and the controller recomputes.
    let subject = 0usize;
    let controller_before = dep.controller_platform.total_counters();
    let as_before = dep.as_platforms[subject].total_counters();
    let t_before = dep.transition_stats()?;
    let announce_wire = dep.submit_one(subject)?;
    dep.compute()?;
    let announce_server = dep
        .controller_platform
        .total_counters()
        .since(controller_before);
    let announce_client = dep.as_platforms[subject].total_counters().since(as_before);
    let announce_transitions = dep.transition_stats()?.since(t_before);

    let controller_before = dep.controller_platform.total_counters();
    let as_before = dep.as_platforms[subject].total_counters();
    let t_before = dep.transition_stats()?;
    let (pull_wire, installed) = dep.pull_one(subject)?;
    let pull_server = dep
        .controller_platform
        .total_counters()
        .since(controller_before);
    let pull_client = dep.as_platforms[subject].total_counters().since(as_before);
    let pull_transitions = dep.transition_stats()?.since(t_before);
    debug_assert!(installed > 0, "calibration AS must install routes");

    Ok(WorkProfile {
        setup,
        steps: vec![
            WorkStep {
                name: "announce",
                client: announce_client,
                server: announce_server,
                request_bytes: announce_wire,
                // Message 5 is the controller's short sealed ack.
                response_bytes: 64,
                transitions: announce_transitions,
            },
            WorkStep {
                name: "pull",
                client: pull_client,
                server: pull_server,
                // Message 6 is the AS's nonce-bearing pull request.
                request_bytes: 32,
                response_bytes: pull_wire,
                transitions: pull_transitions,
            },
        ],
        mode,
    })
}

/// `Counters` total across both steps of one session (convenience for
/// tests and reports).
pub fn session_total(profile: &WorkProfile) -> Counters {
    let mut total = Counters::new();
    for s in &profile.steps {
        total.merge(s.client);
        total.merge(s.server);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bgp_profile_shape() {
        let profile = calibrate_bgp(21, 8).unwrap();
        assert_eq!(profile.steps.len(), 2);
        let announce = &profile.steps[0];
        let pull = &profile.steps[1];
        // The announce step includes a full path recomputation inside the
        // controller enclave — it must dominate the pull.
        assert!(announce.server.normal_instr > pull.server.normal_instr);
        assert!(announce.server.sgx_instr > 0);
        assert!(pull.client.sgx_instr > 0);
        // Sealed blobs have real sizes.
        assert!(announce.request_bytes > 0);
        assert!(pull.response_bytes > 0);
        // Bootstrapping (attestation of every AS) dwarfs one churn round.
        assert!(profile.setup.normal_instr > session_total(&profile).normal_instr);
    }

    #[test]
    fn switchless_bgp_reduces_steady_state_sgx() {
        let classic = calibrate_bgp(21, 6).unwrap();
        let sw = calibrate_bgp_mode(21, 6, TransitionMode::Switchless).unwrap();
        let sgx_sum = |p: &WorkProfile| {
            p.steps
                .iter()
                .map(|s| s.server.sgx_instr + s.client.sgx_instr)
                .sum::<u64>()
        };
        assert!(
            sgx_sum(&sw) < sgx_sum(&classic),
            "ring-serviced sealed-blob sends must drop SGX instructions"
        );
        assert!(sw.steps.iter().any(|s| s.transitions.elided > 0));
        assert_eq!(classic.setup, sw.setup, "setup always runs classic");
    }

    #[test]
    fn announcement_batch_amortises_controller_entries() {
        let mut rng = SecureRng::seed_from_u64(99);
        let topology = Topology::random(6, &mut rng);
        let policies = HashMap::new();
        let mut dep = SdnDeployment::new(&topology, &policies, AttestConfig::fast(), 99).unwrap();
        dep.attest_all().unwrap();
        let t0 = dep.transition_stats().unwrap();
        dep.submit_batch(&[0, 1, 2]).unwrap();
        let batch = dep.transition_stats().unwrap().since(t0);
        let t1 = dep.transition_stats().unwrap();
        for i in 3..6 {
            dep.submit_one(i).unwrap();
        }
        let sequential = dep.transition_stats().unwrap().since(t1);
        assert!(
            batch.taken < sequential.taken,
            "one controller entry for the whole batch vs one per announcement"
        );
        assert_eq!(batch.elided, 2, "N-1 controller entries amortised away");
    }

    #[test]
    fn bgp_calibration_deterministic() {
        let a = calibrate_bgp(13, 6).unwrap();
        let b = calibrate_bgp(13, 6).unwrap();
        assert_eq!(a.setup, b.setup);
        assert_eq!(a.steps[0].server, b.steps[0].server);
        assert_eq!(a.steps[1].response_bytes, b.steps[1].response_bytes);
    }
}
