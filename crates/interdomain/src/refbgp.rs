//! Reference distributed BGP — the differential oracle.
//!
//! The paper "verif\[ied\] the correctness of [the controller's] output
//! using GNS3" (§5), i.e. against an independent implementation of the
//! same routing semantics. This module plays that role: a *distributed*
//! message-passing BGP in which every AS keeps its own adj-RIB-in and
//! processes UPDATE messages in a randomised (seeded) order. Under
//! Gao–Rexford policies BGP converges to a unique stable assignment
//! regardless of message ordering, so the centralized controller
//! ([`crate::compute`]) and this simulator must agree route-for-route —
//! and a test sweep asserts they do.

use std::collections::{HashMap, VecDeque};

use teenet_crypto::SecureRng;

use crate::compute::RoutingOutcome;
use crate::policy::LocalPolicy;
use crate::route::Route;
use crate::topology::{AsId, Relationship, Topology};

/// An UPDATE message: `from` (re)announces or withdraws its route to `dst`.
#[derive(Debug, Clone)]
struct Update {
    from: AsId,
    to: AsId,
    dst: AsId,
    /// `None` = withdrawal.
    route: Option<Route>,
}

struct BgpNode {
    id: AsId,
    policy: LocalPolicy,
    neighbors: Vec<(AsId, Relationship)>,
    /// adj-RIB-in: per destination, per announcing neighbor.
    rib_in: HashMap<AsId, HashMap<AsId, Route>>,
    /// Selected best route per destination.
    best: HashMap<AsId, Route>,
}

impl BgpNode {
    /// Applies an update; returns `true` if the best route for
    /// `update.dst` changed.
    fn apply(&mut self, update: &Update) -> bool {
        let rib = self.rib_in.entry(update.dst).or_default();
        match &update.route {
            Some(r) if !r.path.contains(&self.id) => {
                let mut r = r.clone();
                // The stored relationship is the announcer's relationship
                // to this node, which is what pref_for expects.
                let rel = self
                    .neighbors
                    .iter()
                    .find(|&&(n, _)| n == update.from)
                    .map(|&(_, rel)| rel)
                    .expect("update from a neighbor");
                r.local_pref = self.policy.pref_for(update.from, rel);
                rib.insert(update.from, r);
            }
            _ => {
                rib.remove(&update.from);
            }
        }
        // Decision process.
        let mut new_best: Option<Route> = None;
        if update.dst == self.id {
            new_best = Some(Route::origin(self.id));
        }
        for candidate in rib.values() {
            match &new_best {
                None => new_best = Some(candidate.clone()),
                Some(cur) => {
                    if candidate.better_than(cur) {
                        new_best = Some(candidate.clone());
                    }
                }
            }
        }
        let changed = new_best.as_ref() != self.best.get(&update.dst);
        match new_best {
            Some(r) => {
                self.best.insert(update.dst, r);
            }
            None => {
                self.best.remove(&update.dst);
            }
        }
        changed
    }

    /// Builds the updates this node sends after its best route to `dst`
    /// changed.
    fn announcements(&self, dst: AsId) -> Vec<Update> {
        let best = self.best.get(&dst);
        let learned_from = best.and_then(|r| {
            r.next_hop().map(|nh| {
                self.neighbors
                    .iter()
                    .find(|&&(n, _)| n == nh)
                    .expect("next hop is neighbor")
                    .1
            })
        });
        let mut out = Vec::with_capacity(self.neighbors.len());
        for &(nbr, nbr_rel) in &self.neighbors {
            if nbr == dst {
                continue;
            }
            let route = match best {
                Some(r) if self.policy.may_export(learned_from, nbr, nbr_rel) => {
                    let mut path = Vec::with_capacity(r.path.len() + 1);
                    path.push(self.id);
                    path.extend_from_slice(&r.path);
                    Some(Route {
                        dst,
                        path,
                        local_pref: 0,
                    })
                }
                _ => None,
            };
            out.push(Update {
                from: self.id,
                to: nbr,
                dst,
                route,
            });
        }
        out
    }
}

/// Runs distributed BGP to convergence with a seeded random message order.
///
/// Returns the converged best routes in [`RoutingOutcome`] form
/// (`rib_in` populated, `work_units` counts processed updates).
pub fn run_distributed_bgp(
    topology: &Topology,
    policies: &HashMap<AsId, LocalPolicy>,
    seed: u64,
) -> RoutingOutcome {
    let mut rng = SecureRng::seed_from_u64(seed);
    let mut nodes: HashMap<AsId, BgpNode> = topology
        .ases()
        .map(|a| {
            (
                a,
                BgpNode {
                    id: a,
                    policy: policies[&a].clone(),
                    neighbors: topology.neighbors(a),
                    rib_in: HashMap::new(),
                    best: HashMap::new(),
                },
            )
        })
        .collect();

    // Per-session FIFO queues: BGP runs over TCP, so updates between one
    // pair of speakers arrive in order; only the interleaving *across*
    // sessions is random. (Randomising within a session would let a stale
    // announcement overtake its withdrawal — not a real BGP behaviour.)
    let mut sessions: HashMap<(AsId, AsId), VecDeque<Update>> = HashMap::new();
    let enqueue = |sessions: &mut HashMap<(AsId, AsId), VecDeque<Update>>, u: Update| {
        sessions.entry((u.from, u.to)).or_default().push_back(u);
    };

    // Bootstrap: every AS originates its own prefix.
    for a in topology.ases() {
        nodes
            .get_mut(&a)
            .expect("node")
            .best
            .insert(a, Route::origin(a));
        for u in nodes[&a].announcements(a) {
            enqueue(&mut sessions, u);
        }
    }

    let mut work_units = 0u64;
    let budget = (topology.len() as u64 + 1).pow(4) * 64;
    loop {
        let mut live: Vec<(AsId, AsId)> = sessions
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&k, _)| k)
            .collect();
        if live.is_empty() {
            break;
        }
        live.sort(); // deterministic base order before the random pick
        work_units += 1;
        assert!(work_units < budget, "distributed BGP failed to converge");
        let pick = live[rng.gen_range(live.len() as u64) as usize];
        let update = sessions
            .get_mut(&pick)
            .expect("live session")
            .pop_front()
            .expect("nonempty");
        let node = nodes.get_mut(&update.to).expect("node");
        if node.apply(&update) {
            for u in nodes[&update.to].announcements(update.dst) {
                enqueue(&mut sessions, u);
            }
        }
    }

    let mut outcome = RoutingOutcome {
        best: HashMap::new(),
        rib_in: HashMap::new(),
        work_units,
    };
    for (a, node) in nodes {
        for (dst, route) in node.best {
            if dst != a {
                outcome.best.insert((a, dst), route);
            }
        }
        for (dst, rib) in node.rib_in {
            let mut routes: Vec<Route> = rib.into_values().collect();
            routes.sort_by_key(|r| r.next_hop());
            outcome.rib_in.entry(a).or_default().insert(dst, routes);
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::{compute_routes, default_policies};

    /// The headline oracle test: centralized == distributed on random
    /// topologies under multiple message orderings.
    #[test]
    fn centralized_matches_distributed() {
        for topo_seed in [1u64, 2, 3] {
            let mut rng = SecureRng::seed_from_u64(topo_seed);
            let t = Topology::random(20, &mut rng);
            let p = default_policies(&t);
            let central = compute_routes(&t, &p);
            for order_seed in [10u64, 20] {
                let dist = run_distributed_bgp(&t, &p, order_seed);
                assert_eq!(
                    central.best, dist.best,
                    "divergence at topo_seed={topo_seed} order_seed={order_seed}"
                );
            }
        }
    }

    #[test]
    fn matches_with_policy_overrides() {
        let mut rng = SecureRng::seed_from_u64(4);
        let t = Topology::random(15, &mut rng);
        let mut p = default_policies(&t);
        // A couple of arbitrary overrides (promises).
        if let Some(pol) = p.get_mut(&AsId(5)) {
            pol.pref_override.insert(AsId(1), 450);
        }
        if let Some(pol) = p.get_mut(&AsId(8)) {
            pol.never_export_to.push(AsId(3));
        }
        let central = compute_routes(&t, &p);
        let dist = run_distributed_bgp(&t, &p, 99);
        assert_eq!(central.best, dist.best);
    }

    #[test]
    fn message_order_does_not_matter() {
        let mut rng = SecureRng::seed_from_u64(6);
        let t = Topology::random(12, &mut rng);
        let p = default_policies(&t);
        let a = run_distributed_bgp(&t, &p, 1);
        let b = run_distributed_bgp(&t, &p, 2);
        let c = run_distributed_bgp(&t, &p, 3);
        assert_eq!(a.best, b.best);
        assert_eq!(b.best, c.best);
    }
}
