//! Routes and the BGP decision process.

use crate::topology::AsId;

/// A candidate or selected route to a destination AS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Destination AS.
    pub dst: AsId,
    /// AS path, next hop first, destination last. Empty for the
    /// destination's own (origin) route.
    pub path: Vec<AsId>,
    /// Local preference assigned by the selecting AS.
    pub local_pref: u32,
}

impl Route {
    /// The origin route an AS has to itself.
    pub fn origin(dst: AsId) -> Self {
        Route {
            dst,
            path: Vec::new(),
            local_pref: u32::MAX,
        }
    }

    /// The neighbor this route goes through (`None` for the origin route).
    pub fn next_hop(&self) -> Option<AsId> {
        self.path.first().copied()
    }

    /// AS-path length.
    pub fn path_len(&self) -> usize {
        self.path.len()
    }

    /// True if `asn` appears on the path (loop detection).
    pub fn contains(&self, asn: AsId) -> bool {
        self.path.contains(&asn)
    }

    /// BGP decision process: is `self` preferred over `other`?
    ///
    /// Higher local-pref wins, then shorter AS path, then lowest next-hop
    /// AS id as the deterministic tie-break.
    pub fn better_than(&self, other: &Route) -> bool {
        if self.local_pref != other.local_pref {
            return self.local_pref > other.local_pref;
        }
        if self.path.len() != other.path.len() {
            return self.path.len() < other.path.len();
        }
        match (self.next_hop(), other.next_hop()) {
            (Some(a), Some(b)) => a < b,
            (None, _) => true,
            (_, None) => false,
        }
    }

    /// Wire encoding (u32 fields, little-endian).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.path.len() * 4);
        out.extend_from_slice(&self.dst.0.to_le_bytes());
        out.extend_from_slice(&self.local_pref.to_le_bytes());
        out.extend_from_slice(&(self.path.len() as u32).to_le_bytes());
        for hop in &self.path {
            out.extend_from_slice(&hop.0.to_le_bytes());
        }
        out
    }

    /// Parses [`Route::to_bytes`]; returns the route and bytes consumed.
    pub fn from_bytes(buf: &[u8]) -> Option<(Self, usize)> {
        if buf.len() < 12 {
            return None;
        }
        let dst = AsId(u32::from_le_bytes(buf[..4].try_into().ok()?));
        let local_pref = u32::from_le_bytes(buf[4..8].try_into().ok()?);
        let n = u32::from_le_bytes(buf[8..12].try_into().ok()?) as usize;
        if buf.len() < 12 + n * 4 {
            return None;
        }
        let mut path = Vec::with_capacity(n);
        for i in 0..n {
            path.push(AsId(u32::from_le_bytes(
                buf[12 + i * 4..16 + i * 4].try_into().ok()?,
            )));
        }
        Some((
            Route {
                dst,
                path,
                local_pref,
            },
            12 + n * 4,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(dst: u32, path: &[u32], pref: u32) -> Route {
        Route {
            dst: AsId(dst),
            path: path.iter().map(|&i| AsId(i)).collect(),
            local_pref: pref,
        }
    }

    #[test]
    fn origin_route() {
        let o = Route::origin(AsId(3));
        assert_eq!(o.next_hop(), None);
        assert_eq!(o.path_len(), 0);
    }

    #[test]
    fn decision_prefers_local_pref() {
        // Longer path with higher pref wins: policy over path length.
        let customer = r(9, &[1, 2, 3, 9], 300);
        let provider = r(9, &[4, 9], 100);
        assert!(customer.better_than(&provider));
        assert!(!provider.better_than(&customer));
    }

    #[test]
    fn decision_prefers_shorter_path_at_equal_pref() {
        let short = r(9, &[4, 9], 200);
        let long = r(9, &[1, 2, 9], 200);
        assert!(short.better_than(&long));
    }

    #[test]
    fn decision_tiebreaks_on_next_hop() {
        let via1 = r(9, &[1, 9], 200);
        let via2 = r(9, &[2, 9], 200);
        assert!(via1.better_than(&via2));
        assert!(!via2.better_than(&via1));
    }

    #[test]
    fn origin_beats_everything() {
        let o = Route::origin(AsId(9));
        let learned = r(9, &[1, 9], 300);
        assert!(o.better_than(&learned));
    }

    #[test]
    fn loop_detection() {
        let route = r(9, &[1, 2, 9], 200);
        assert!(route.contains(AsId(2)));
        assert!(!route.contains(AsId(5)));
    }

    #[test]
    fn wire_roundtrip() {
        let route = r(9, &[1, 2, 9], 250);
        let bytes = route.to_bytes();
        let (parsed, used) = Route::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, route);
        assert_eq!(used, bytes.len());
        assert!(Route::from_bytes(&bytes[..5]).is_none());
    }
}
