//! The in-enclave verification module (§3.1, "Policy verification").
//!
//! Two ASes with a business agreement both submit the *same* predicate;
//! only when both sides have submitted does the module evaluate it against
//! the routing outcome, and only the Boolean verdict leaves the enclave.
//! The module "ensures that only the predicates agreed upon by the two
//! ASes are verified" and that a predicate "examines only the minimal
//! condition required to verify the agreement": every AS whose routing
//! state the predicate inspects must be one of the two parties.

use std::collections::{HashMap, HashSet};

use crate::compute::RoutingOutcome;
use crate::predicate::Predicate;
use crate::topology::AsId;

/// Why a verification submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyError {
    /// The predicate inspects an AS that is not one of the two parties —
    /// it would leak third-party information.
    ScopeViolation,
    /// The submitting AS is not one of the named parties.
    NotAParty,
    /// No routing outcome has been computed yet.
    NoOutcome,
}

/// Outcome of a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyStatus {
    /// Recorded; waiting for the counterparty to submit the same predicate.
    AwaitingCounterparty,
    /// Both parties submitted: here is the verdict.
    Verified(bool),
}

/// Pending and completed verification agreements.
#[derive(Debug, Default)]
pub struct VerificationModule {
    /// (canonical predicate bytes, unordered party pair) → who submitted.
    pending: HashMap<(Vec<u8>, AsId, AsId), HashSet<AsId>>,
    /// Completed verdicts (idempotent re-query).
    completed: HashMap<(Vec<u8>, AsId, AsId), bool>,
}

fn pair_key(a: AsId, b: AsId) -> (AsId, AsId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl VerificationModule {
    /// An empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// One party submits a predicate for the agreement between `submitter`
    /// and `counterparty`.
    pub fn submit(
        &mut self,
        submitter: AsId,
        party_a: AsId,
        party_b: AsId,
        predicate: &Predicate,
        outcome: Option<&RoutingOutcome>,
    ) -> Result<VerifyStatus, VerifyError> {
        if submitter != party_a && submitter != party_b {
            return Err(VerifyError::NotAParty);
        }
        // Minimality: the predicate may only inspect the two parties.
        for subject in predicate.subjects() {
            if subject != party_a && subject != party_b {
                return Err(VerifyError::ScopeViolation);
            }
        }
        let (a, b) = pair_key(party_a, party_b);
        let key = (predicate.to_bytes(), a, b);
        if let Some(&verdict) = self.completed.get(&key) {
            return Ok(VerifyStatus::Verified(verdict));
        }
        let submitted = self.pending.entry(key.clone()).or_default();
        submitted.insert(submitter);
        if submitted.contains(&a) && submitted.contains(&b) {
            let outcome = outcome.ok_or(VerifyError::NoOutcome)?;
            let verdict = predicate.eval(outcome);
            self.pending.remove(&key);
            self.completed.insert(key, verdict);
            Ok(VerifyStatus::Verified(verdict))
        } else {
            Ok(VerifyStatus::AwaitingCounterparty)
        }
    }

    /// Number of agreements awaiting a counterparty.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::{compute_routes, default_policies};
    use crate::topology::{EdgeKind, Topology};

    fn outcome() -> RoutingOutcome {
        let t = Topology::from_edges(
            4,
            vec![
                (AsId(0), AsId(1), EdgeKind::Peering),
                (AsId(0), AsId(2), EdgeKind::TransitTo),
                (AsId(1), AsId(2), EdgeKind::TransitTo),
                (AsId(2), AsId(3), EdgeKind::TransitTo),
            ],
        );
        compute_routes(&t, &default_policies(&t))
    }

    fn promise() -> Predicate {
        Predicate::PrefersNeighbor {
            of: AsId(0),
            neighbor: AsId(2),
            dst: AsId(3),
        }
    }

    #[test]
    fn two_party_agreement_flow() {
        let out = outcome();
        let mut vm = VerificationModule::new();
        // AS2 (promisee) submits first: pending.
        let s = vm
            .submit(AsId(2), AsId(0), AsId(2), &promise(), Some(&out))
            .unwrap();
        assert_eq!(s, VerifyStatus::AwaitingCounterparty);
        assert_eq!(vm.pending_count(), 1);
        // AS0 (promise maker) agrees: verified.
        let s = vm
            .submit(AsId(0), AsId(0), AsId(2), &promise(), Some(&out))
            .unwrap();
        assert_eq!(s, VerifyStatus::Verified(true));
        assert_eq!(vm.pending_count(), 0);
        // Idempotent re-query by either party.
        let s = vm
            .submit(AsId(2), AsId(0), AsId(2), &promise(), Some(&out))
            .unwrap();
        assert_eq!(s, VerifyStatus::Verified(true));
    }

    #[test]
    fn third_party_scope_rejected() {
        // AS1 and AS2 trying to inspect AS0's selections would leak AS0's
        // private policy.
        let out = outcome();
        let mut vm = VerificationModule::new();
        let nosy = Predicate::NextHopIs {
            src: AsId(0),
            dst: AsId(3),
            next_hop: AsId(2),
        };
        let err = vm
            .submit(AsId(1), AsId(1), AsId(2), &nosy, Some(&out))
            .unwrap_err();
        assert_eq!(err, VerifyError::ScopeViolation);
    }

    #[test]
    fn non_party_cannot_submit() {
        let out = outcome();
        let mut vm = VerificationModule::new();
        let err = vm
            .submit(AsId(3), AsId(0), AsId(2), &promise(), Some(&out))
            .unwrap_err();
        assert_eq!(err, VerifyError::NotAParty);
    }

    #[test]
    fn differing_predicates_do_not_match() {
        let out = outcome();
        let mut vm = VerificationModule::new();
        vm.submit(AsId(0), AsId(0), AsId(2), &promise(), Some(&out))
            .unwrap();
        let other = Predicate::RouteExists {
            src: AsId(0),
            dst: AsId(2),
        };
        let s = vm
            .submit(AsId(2), AsId(0), AsId(2), &other, Some(&out))
            .unwrap();
        assert_eq!(
            s,
            VerifyStatus::AwaitingCounterparty,
            "a different predicate opens a new agreement"
        );
        assert_eq!(vm.pending_count(), 2);
    }

    #[test]
    fn broken_promise_detected() {
        // Build an outcome where AS0 does NOT pick AS2 for dst 3 (pref
        // override sabotages the promise).
        let t = Topology::from_edges(
            4,
            vec![
                (AsId(0), AsId(1), EdgeKind::Peering),
                (AsId(0), AsId(2), EdgeKind::TransitTo),
                (AsId(1), AsId(2), EdgeKind::TransitTo),
                (AsId(2), AsId(3), EdgeKind::TransitTo),
                // AS1 also sells transit to AS3 so AS0 has an alternative.
                (AsId(1), AsId(3), EdgeKind::TransitTo),
            ],
        );
        let mut p = default_policies(&t);
        // AS0 secretly downgrades customer 2 below peer 1.
        p.get_mut(&AsId(0))
            .unwrap()
            .pref_override
            .insert(AsId(2), 50);
        let out = compute_routes(&t, &p);
        let mut vm = VerificationModule::new();
        vm.submit(AsId(2), AsId(0), AsId(2), &promise(), Some(&out))
            .unwrap();
        let s = vm
            .submit(AsId(0), AsId(0), AsId(2), &promise(), Some(&out))
            .unwrap();
        assert_eq!(s, VerifyStatus::Verified(false), "promise broken");
    }

    #[test]
    fn no_outcome_yet() {
        let mut vm = VerificationModule::new();
        vm.submit(AsId(0), AsId(0), AsId(2), &promise(), None)
            .unwrap();
        let err = vm
            .submit(AsId(2), AsId(0), AsId(2), &promise(), None)
            .unwrap_err();
        assert_eq!(err, VerifyError::NoOutcome);
    }
}
