//! Wire encodings for controller messages (edges, routes, policy bundles).

use crate::policy::LocalPolicy;
use crate::route::Route;
use crate::topology::{AsId, EdgeKind, EdgeList};

/// Encodes a list of edges (u32 count, then (a, b, kind) triples).
pub fn encode_edges(edges: &[(AsId, AsId, EdgeKind)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + edges.len() * 9);
    out.extend_from_slice(&(edges.len() as u32).to_le_bytes());
    for &(a, b, kind) in edges {
        out.extend_from_slice(&a.0.to_le_bytes());
        out.extend_from_slice(&b.0.to_le_bytes());
        out.push(match kind {
            EdgeKind::TransitTo => 0,
            EdgeKind::Peering => 1,
        });
    }
    out
}

/// Decodes [`encode_edges`]; returns edges and bytes consumed.
pub fn decode_edges(buf: &[u8]) -> Option<(EdgeList, usize)> {
    if buf.len() < 4 {
        return None;
    }
    let n = u32::from_le_bytes(buf[..4].try_into().ok()?) as usize;
    // Bound the preallocation by what the buffer can actually hold (an
    // attacker-controlled count must not drive allocation).
    if n > (buf.len() - 4) / 9 {
        return None;
    }
    let mut edges = Vec::with_capacity(n);
    let mut off = 4;
    for _ in 0..n {
        let a = AsId(u32::from_le_bytes(buf.get(off..off + 4)?.try_into().ok()?));
        let b = AsId(u32::from_le_bytes(
            buf.get(off + 4..off + 8)?.try_into().ok()?,
        ));
        let kind = match buf.get(off + 8)? {
            0 => EdgeKind::TransitTo,
            1 => EdgeKind::Peering,
            _ => return None,
        };
        edges.push((a, b, kind));
        off += 9;
    }
    Some((edges, off))
}

/// Encodes an AS's submission: its private policy plus its local topology
/// view (the edges incident to it).
pub fn encode_submission(policy: &LocalPolicy, edges: &[(AsId, AsId, EdgeKind)]) -> Vec<u8> {
    let policy_bytes = policy.to_bytes();
    let mut out = Vec::with_capacity(4 + policy_bytes.len() + edges.len() * 9);
    out.extend_from_slice(&(policy_bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&policy_bytes);
    out.extend_from_slice(&encode_edges(edges));
    out
}

/// Decodes [`encode_submission`].
pub fn decode_submission(buf: &[u8]) -> Option<(LocalPolicy, EdgeList)> {
    if buf.len() < 4 {
        return None;
    }
    let plen = u32::from_le_bytes(buf[..4].try_into().ok()?) as usize;
    let policy = LocalPolicy::from_bytes(buf.get(4..4 + plen)?)?;
    let (edges, used) = decode_edges(buf.get(4 + plen..)?)?;
    if 4 + plen + used != buf.len() {
        return None;
    }
    Some((policy, edges))
}

/// Encodes a route list (u32 count, then routes).
pub fn encode_routes(routes: &[&Route]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + routes.len() * 24);
    out.extend_from_slice(&(routes.len() as u32).to_le_bytes());
    for r in routes {
        out.extend_from_slice(&r.to_bytes());
    }
    out
}

/// Decodes [`encode_routes`].
pub fn decode_routes(buf: &[u8]) -> Option<Vec<Route>> {
    if buf.len() < 4 {
        return None;
    }
    let n = u32::from_le_bytes(buf[..4].try_into().ok()?) as usize;
    // Each route occupies at least 12 bytes on the wire; reject counts the
    // buffer cannot contain before allocating.
    if n > (buf.len() - 4) / 12 {
        return None;
    }
    let mut routes = Vec::with_capacity(n);
    let mut off = 4;
    for _ in 0..n {
        let (r, used) = Route::from_bytes(buf.get(off..)?)?;
        routes.push(r);
        off += used;
    }
    if off != buf.len() {
        return None;
    }
    Some(routes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_roundtrip() {
        let edges = vec![
            (AsId(0), AsId(1), EdgeKind::Peering),
            (AsId(0), AsId(2), EdgeKind::TransitTo),
        ];
        let bytes = encode_edges(&edges);
        let (parsed, used) = decode_edges(&bytes).unwrap();
        assert_eq!(parsed, edges);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn edges_reject_bad_kind() {
        let mut bytes = encode_edges(&[(AsId(0), AsId(1), EdgeKind::Peering)]);
        let last = bytes.len() - 1;
        bytes[last] = 9;
        assert!(decode_edges(&bytes).is_none());
    }

    #[test]
    fn submission_roundtrip() {
        let mut policy = LocalPolicy::new(AsId(3));
        policy.pref_override.insert(AsId(1), 400);
        let edges = vec![(AsId(1), AsId(3), EdgeKind::TransitTo)];
        let bytes = encode_submission(&policy, &edges);
        let (p, e) = decode_submission(&bytes).unwrap();
        assert_eq!(p, policy);
        assert_eq!(e, edges);
    }

    #[test]
    fn submission_rejects_trailing() {
        let policy = LocalPolicy::new(AsId(3));
        let mut bytes = encode_submission(&policy, &[]);
        bytes.push(7);
        assert!(decode_submission(&bytes).is_none());
    }

    #[test]
    fn routes_roundtrip() {
        let r1 = Route {
            dst: AsId(5),
            path: vec![AsId(2), AsId(5)],
            local_pref: 300,
        };
        let r2 = Route::origin(AsId(7));
        let bytes = encode_routes(&[&r1, &r2]);
        let parsed = decode_routes(&bytes).unwrap();
        assert_eq!(parsed, vec![r1, r2]);
        assert!(decode_routes(&bytes[..bytes.len() - 1]).is_none());
    }
}
