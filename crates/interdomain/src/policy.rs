//! Per-AS routing policies: local preference and Gao–Rexford export rules.
//!
//! These are exactly the secrets the paper's design protects: "ISPs do not
//! want to disclose their routing policies for security and commercial
//! reasons" (§1). A [`LocalPolicy`] never leaves its AS except through the
//! attestation-bootstrapped secure channel to the inter-domain controller.

use std::collections::HashMap;

use crate::topology::{AsId, Relationship};

/// Default local-preference bands by relationship (Gao–Rexford economic
/// ordering: customer routes are revenue, provider routes cost money).
pub fn default_pref(rel: Relationship) -> u32 {
    match rel {
        Relationship::Customer => 300,
        Relationship::Peer => 200,
        Relationship::Provider => 100,
    }
}

/// One AS's private routing policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalPolicy {
    /// Whose policy this is.
    pub as_id: AsId,
    /// Per-neighbor local preference overrides (beyond the relationship
    /// default) — e.g. a promise to prefer one customer's routes.
    pub pref_override: HashMap<AsId, u32>,
    /// Neighbors to which routes must never be exported (beyond
    /// Gao–Rexford), modelling selective-export contracts.
    pub never_export_to: Vec<AsId>,
}

impl LocalPolicy {
    /// A policy with relationship defaults only.
    pub fn new(as_id: AsId) -> Self {
        LocalPolicy {
            as_id,
            pref_override: HashMap::new(),
            never_export_to: Vec::new(),
        }
    }

    /// Local preference for routes learned from `neighbor`.
    pub fn pref_for(&self, neighbor: AsId, rel: Relationship) -> u32 {
        self.pref_override
            .get(&neighbor)
            .copied()
            .unwrap_or_else(|| default_pref(rel))
    }

    /// Gao–Rexford export rule plus explicit filters: may a route learned
    /// from a neighbor with relationship `learned_from` be exported to
    /// `to` (relationship `to_rel`)?
    ///
    /// Routes learned from customers are exported to everyone; routes
    /// learned from peers/providers go only to customers. The AS's own
    /// prefix (`learned_from == None`) is exported to everyone.
    pub fn may_export(
        &self,
        learned_from: Option<Relationship>,
        to: AsId,
        to_rel: Relationship,
    ) -> bool {
        if self.never_export_to.contains(&to) {
            return false;
        }
        match learned_from {
            None => true,
            Some(Relationship::Customer) => true,
            Some(Relationship::Peer) | Some(Relationship::Provider) => {
                to_rel == Relationship::Customer
            }
        }
    }

    /// Canonical wire encoding (travels the secure channel to the
    /// inter-domain controller).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.pref_override.len() * 8);
        out.extend_from_slice(&self.as_id.0.to_le_bytes());
        let mut overrides: Vec<(&AsId, &u32)> = self.pref_override.iter().collect();
        overrides.sort();
        out.extend_from_slice(&(overrides.len() as u32).to_le_bytes());
        for (n, p) in overrides {
            out.extend_from_slice(&n.0.to_le_bytes());
            out.extend_from_slice(&p.to_le_bytes());
        }
        out.extend_from_slice(&(self.never_export_to.len() as u32).to_le_bytes());
        for n in &self.never_export_to {
            out.extend_from_slice(&n.0.to_le_bytes());
        }
        out
    }

    /// Parses [`LocalPolicy::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Option<Self> {
        let mut off = 0usize;
        let read_u32 = |buf: &[u8], off: &mut usize| -> Option<u32> {
            let v = u32::from_le_bytes(buf.get(*off..*off + 4)?.try_into().ok()?);
            *off += 4;
            Some(v)
        };
        let as_id = AsId(read_u32(buf, &mut off)?);
        let n_over = read_u32(buf, &mut off)? as usize;
        // Each override is 8 bytes; cap the preallocation accordingly.
        if n_over > buf.len().saturating_sub(off) / 8 {
            return None;
        }
        let mut pref_override = HashMap::with_capacity(n_over);
        for _ in 0..n_over {
            let n = AsId(read_u32(buf, &mut off)?);
            let p = read_u32(buf, &mut off)?;
            pref_override.insert(n, p);
        }
        let n_filters = read_u32(buf, &mut off)? as usize;
        if n_filters > buf.len().saturating_sub(off) / 4 {
            return None;
        }
        let mut never_export_to = Vec::with_capacity(n_filters);
        for _ in 0..n_filters {
            never_export_to.push(AsId(read_u32(buf, &mut off)?));
        }
        if off != buf.len() {
            return None;
        }
        Some(LocalPolicy {
            as_id,
            pref_override,
            never_export_to,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_prefs_follow_economics() {
        assert!(default_pref(Relationship::Customer) > default_pref(Relationship::Peer));
        assert!(default_pref(Relationship::Peer) > default_pref(Relationship::Provider));
    }

    #[test]
    fn overrides_take_precedence() {
        let mut p = LocalPolicy::new(AsId(1));
        p.pref_override.insert(AsId(5), 500);
        assert_eq!(p.pref_for(AsId(5), Relationship::Provider), 500);
        assert_eq!(p.pref_for(AsId(6), Relationship::Provider), 100);
    }

    #[test]
    fn gao_rexford_export_rules() {
        let p = LocalPolicy::new(AsId(1));
        // Own prefix to everyone.
        assert!(p.may_export(None, AsId(2), Relationship::Provider));
        // Customer routes to everyone.
        assert!(p.may_export(Some(Relationship::Customer), AsId(2), Relationship::Peer));
        assert!(p.may_export(
            Some(Relationship::Customer),
            AsId(2),
            Relationship::Provider
        ));
        // Peer/provider routes only to customers (no free transit).
        assert!(p.may_export(Some(Relationship::Peer), AsId(2), Relationship::Customer));
        assert!(!p.may_export(Some(Relationship::Peer), AsId(2), Relationship::Peer));
        assert!(!p.may_export(
            Some(Relationship::Provider),
            AsId(2),
            Relationship::Provider
        ));
        assert!(!p.may_export(Some(Relationship::Provider), AsId(2), Relationship::Peer));
    }

    #[test]
    fn explicit_filter_blocks_export() {
        let mut p = LocalPolicy::new(AsId(1));
        p.never_export_to.push(AsId(2));
        assert!(!p.may_export(None, AsId(2), Relationship::Customer));
        assert!(p.may_export(None, AsId(3), Relationship::Customer));
    }

    #[test]
    fn wire_roundtrip() {
        let mut p = LocalPolicy::new(AsId(7));
        p.pref_override.insert(AsId(1), 400);
        p.pref_override.insert(AsId(2), 50);
        p.never_export_to.push(AsId(9));
        let parsed = LocalPolicy::from_bytes(&p.to_bytes()).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn wire_rejects_malformed() {
        assert!(LocalPolicy::from_bytes(&[1, 2, 3]).is_none());
        let p = LocalPolicy::new(AsId(7));
        let mut bytes = p.to_bytes();
        bytes.push(0);
        assert!(LocalPolicy::from_bytes(&bytes).is_none());
    }
}
