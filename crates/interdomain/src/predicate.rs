//! Policy predicates: the verification queries of §3.1.
//!
//! "The query is a Boolean condition that an AS wants to verify concerning
//! the behavior of other ASes that it has a business relationship with.
//! For example, two ASes, A and B, agree upon the condition to be
//! verified [...] (e.g., is the route announced by A most preferred by
//! B?)". Predicates evaluate inside the inter-domain controller's enclave
//! over the routing outcome — including each AS's adj-RIB-in — and only
//! the Boolean result leaves.

use crate::compute::RoutingOutcome;
use crate::topology::AsId;

/// A Boolean query over the routing outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Does `of` select the route announced by `neighbor` for `dst`
    /// whenever `neighbor` announced one? (The paper's example promise:
    /// "is the route announced by A most preferred by B?")
    PrefersNeighbor {
        /// The AS whose selection is checked (the promise maker).
        of: AsId,
        /// The neighbor whose announcements should win (the promisee).
        neighbor: AsId,
        /// Destination the promise covers.
        dst: AsId,
    },
    /// Does `src`'s selected route to `dst` have next hop `next_hop`?
    NextHopIs {
        /// Source AS.
        src: AsId,
        /// Destination AS.
        dst: AsId,
        /// Expected first hop.
        next_hop: AsId,
    },
    /// Does `src`'s selected path to `dst` traverse `via`?
    PathContains {
        /// Source AS.
        src: AsId,
        /// Destination AS.
        dst: AsId,
        /// AS that must appear on the path.
        via: AsId,
    },
    /// Does `src`'s selected path to `dst` avoid `avoid`?
    PathAvoids {
        /// Source AS.
        src: AsId,
        /// Destination AS.
        dst: AsId,
        /// AS that must not appear on the path.
        avoid: AsId,
    },
    /// Does `src` have any route to `dst`?
    RouteExists {
        /// Source AS.
        src: AsId,
        /// Destination AS.
        dst: AsId,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Evaluates the predicate over a routing outcome.
    pub fn eval(&self, outcome: &RoutingOutcome) -> bool {
        match self {
            Predicate::PrefersNeighbor { of, neighbor, dst } => {
                // Vacuously true if the neighbor announced nothing.
                let announced = outcome
                    .rib_in
                    .get(of)
                    .and_then(|per_dst| per_dst.get(dst))
                    .map(|routes| routes.iter().any(|r| r.next_hop() == Some(*neighbor)))
                    .unwrap_or(false);
                if !announced {
                    return true;
                }
                outcome
                    .route(*of, *dst)
                    .map(|r| r.next_hop() == Some(*neighbor))
                    .unwrap_or(false)
            }
            Predicate::NextHopIs { src, dst, next_hop } => outcome
                .route(*src, *dst)
                .map(|r| r.next_hop() == Some(*next_hop))
                .unwrap_or(false),
            Predicate::PathContains { src, dst, via } => outcome
                .route(*src, *dst)
                .map(|r| r.contains(*via))
                .unwrap_or(false),
            Predicate::PathAvoids { src, dst, avoid } => outcome
                .route(*src, *dst)
                .map(|r| !r.contains(*avoid))
                .unwrap_or(true),
            Predicate::RouteExists { src, dst } => outcome.route(*src, *dst).is_some(),
            Predicate::And(a, b) => a.eval(outcome) && b.eval(outcome),
            Predicate::Or(a, b) => a.eval(outcome) || b.eval(outcome),
            Predicate::Not(a) => !a.eval(outcome),
        }
    }

    /// The ASes whose routing state this predicate inspects.
    ///
    /// Used by the verification module to enforce that a predicate "examines
    /// only the minimal condition required to verify the agreement, without
    /// leaking additional information": every inspected AS must be one of
    /// the two agreeing parties.
    pub fn subjects(&self) -> Vec<AsId> {
        match self {
            Predicate::PrefersNeighbor { of, .. } => vec![*of],
            Predicate::NextHopIs { src, .. }
            | Predicate::PathContains { src, .. }
            | Predicate::PathAvoids { src, .. }
            | Predicate::RouteExists { src, .. } => vec![*src],
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                let mut s = a.subjects();
                s.extend(b.subjects());
                s.sort();
                s.dedup();
                s
            }
            Predicate::Not(a) => a.subjects(),
        }
    }

    /// Wire encoding (prefix form, one byte tag + u32 operands).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    fn encode(&self, out: &mut Vec<u8>) {
        let ids = |tag: u8, xs: &[AsId], out: &mut Vec<u8>| {
            out.push(tag);
            for x in xs {
                out.extend_from_slice(&x.0.to_le_bytes());
            }
        };
        match self {
            Predicate::PrefersNeighbor { of, neighbor, dst } => {
                ids(1, &[*of, *neighbor, *dst], out)
            }
            Predicate::NextHopIs { src, dst, next_hop } => ids(2, &[*src, *dst, *next_hop], out),
            Predicate::PathContains { src, dst, via } => ids(3, &[*src, *dst, *via], out),
            Predicate::PathAvoids { src, dst, avoid } => ids(4, &[*src, *dst, *avoid], out),
            Predicate::RouteExists { src, dst } => ids(5, &[*src, *dst], out),
            Predicate::And(a, b) => {
                out.push(6);
                a.encode(out);
                b.encode(out);
            }
            Predicate::Or(a, b) => {
                out.push(7);
                a.encode(out);
                b.encode(out);
            }
            Predicate::Not(a) => {
                out.push(8);
                a.encode(out);
            }
        }
    }

    /// Parses [`Predicate::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Option<Self> {
        let (p, used) = Self::decode(buf)?;
        (used == buf.len()).then_some(p)
    }

    fn decode(buf: &[u8]) -> Option<(Self, usize)> {
        let tag = *buf.first()?;
        let id = |i: usize| -> Option<AsId> {
            Some(AsId(u32::from_le_bytes(
                buf.get(1 + i * 4..5 + i * 4)?.try_into().ok()?,
            )))
        };
        match tag {
            1 => Some((
                Predicate::PrefersNeighbor {
                    of: id(0)?,
                    neighbor: id(1)?,
                    dst: id(2)?,
                },
                13,
            )),
            2 => Some((
                Predicate::NextHopIs {
                    src: id(0)?,
                    dst: id(1)?,
                    next_hop: id(2)?,
                },
                13,
            )),
            3 => Some((
                Predicate::PathContains {
                    src: id(0)?,
                    dst: id(1)?,
                    via: id(2)?,
                },
                13,
            )),
            4 => Some((
                Predicate::PathAvoids {
                    src: id(0)?,
                    dst: id(1)?,
                    avoid: id(2)?,
                },
                13,
            )),
            5 => Some((
                Predicate::RouteExists {
                    src: id(0)?,
                    dst: id(1)?,
                },
                9,
            )),
            6 | 7 => {
                let (a, ua) = Self::decode(&buf[1..])?;
                let (b, ub) = Self::decode(buf.get(1 + ua..)?)?;
                let node = if tag == 6 {
                    Predicate::And(Box::new(a), Box::new(b))
                } else {
                    Predicate::Or(Box::new(a), Box::new(b))
                };
                Some((node, 1 + ua + ub))
            }
            8 => {
                let (a, ua) = Self::decode(&buf[1..])?;
                Some((Predicate::Not(Box::new(a)), 1 + ua))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::{compute_routes, default_policies};
    use crate::topology::{EdgeKind, Topology};

    fn outcome() -> RoutingOutcome {
        let t = Topology::from_edges(
            4,
            vec![
                (AsId(0), AsId(1), EdgeKind::Peering),
                (AsId(0), AsId(2), EdgeKind::TransitTo),
                (AsId(1), AsId(2), EdgeKind::TransitTo),
                (AsId(2), AsId(3), EdgeKind::TransitTo),
            ],
        );
        compute_routes(&t, &default_policies(&t))
    }

    #[test]
    fn next_hop_and_exists() {
        let out = outcome();
        assert!(Predicate::RouteExists {
            src: AsId(0),
            dst: AsId(3)
        }
        .eval(&out));
        assert!(Predicate::NextHopIs {
            src: AsId(0),
            dst: AsId(3),
            next_hop: AsId(2)
        }
        .eval(&out));
        assert!(!Predicate::NextHopIs {
            src: AsId(0),
            dst: AsId(3),
            next_hop: AsId(1)
        }
        .eval(&out));
    }

    #[test]
    fn path_contains_and_avoids() {
        let out = outcome();
        assert!(Predicate::PathContains {
            src: AsId(0),
            dst: AsId(3),
            via: AsId(2)
        }
        .eval(&out));
        assert!(Predicate::PathAvoids {
            src: AsId(0),
            dst: AsId(3),
            avoid: AsId(1)
        }
        .eval(&out));
        // Nonexistent route avoids everything vacuously.
        assert!(Predicate::PathAvoids {
            src: AsId(0),
            dst: AsId(0),
            avoid: AsId(1)
        }
        .eval(&out));
    }

    #[test]
    fn prefers_neighbor_promise() {
        let out = outcome();
        // AS0 hears AS3's prefix only via customer 2, so the promise
        // "AS0 prefers routes announced by AS2 for dst 3" holds.
        assert!(Predicate::PrefersNeighbor {
            of: AsId(0),
            neighbor: AsId(2),
            dst: AsId(3)
        }
        .eval(&out));
        // Vacuous when the neighbor never announced that destination:
        // AS3 announces nothing to AS0 directly (not adjacent).
        assert!(Predicate::PrefersNeighbor {
            of: AsId(0),
            neighbor: AsId(3),
            dst: AsId(3)
        }
        .eval(&out));
    }

    #[test]
    fn boolean_combinators() {
        let out = outcome();
        let t = Predicate::RouteExists {
            src: AsId(0),
            dst: AsId(3),
        };
        let f = Predicate::NextHopIs {
            src: AsId(0),
            dst: AsId(3),
            next_hop: AsId(1),
        };
        assert!(Predicate::And(
            Box::new(t.clone()),
            Box::new(Predicate::Not(Box::new(f.clone())))
        )
        .eval(&out));
        assert!(Predicate::Or(Box::new(f.clone()), Box::new(t.clone())).eval(&out));
        assert!(!Predicate::And(Box::new(t), Box::new(f)).eval(&out));
    }

    #[test]
    fn subjects_collected() {
        let p = Predicate::And(
            Box::new(Predicate::RouteExists {
                src: AsId(1),
                dst: AsId(9),
            }),
            Box::new(Predicate::PrefersNeighbor {
                of: AsId(2),
                neighbor: AsId(1),
                dst: AsId(9),
            }),
        );
        assert_eq!(p.subjects(), vec![AsId(1), AsId(2)]);
    }

    #[test]
    fn wire_roundtrip_nested() {
        let p = Predicate::Or(
            Box::new(Predicate::Not(Box::new(Predicate::PathContains {
                src: AsId(1),
                dst: AsId(2),
                via: AsId(3),
            }))),
            Box::new(Predicate::And(
                Box::new(Predicate::RouteExists {
                    src: AsId(4),
                    dst: AsId(5),
                }),
                Box::new(Predicate::PrefersNeighbor {
                    of: AsId(6),
                    neighbor: AsId(7),
                    dst: AsId(8),
                }),
            )),
        );
        assert_eq!(Predicate::from_bytes(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn wire_rejects_garbage() {
        assert!(Predicate::from_bytes(&[]).is_none());
        assert!(Predicate::from_bytes(&[99]).is_none());
        assert!(Predicate::from_bytes(&[1, 0, 0]).is_none());
        let p = Predicate::RouteExists {
            src: AsId(1),
            dst: AsId(2),
        };
        let mut bytes = p.to_bytes();
        bytes.push(0);
        assert!(Predicate::from_bytes(&bytes).is_none());
    }
}
