//! The full SDN inter-domain routing deployment (Figure 2 end to end).
//!
//! One SGX platform hosts the inter-domain controller; every AS runs its
//! AS-local controller on its own platform. The untrusted "network" between
//! them is this driver, which only ever ferries opaque bytes — attestation
//! messages and channel ciphertexts — mirroring the paper's trust model.
//!
//! Also provides [`run_native`], the non-SGX baseline that executes the
//! identical workload without enclaves, which is the "w/o SGX" column of
//! Table 4 and the lower curve of Figure 3.

use std::collections::HashMap;

use teenet::attest::AttestConfig;
use teenet::ledger::{AttestKind, AttestLedger};
use teenet_crypto::schnorr::{SchnorrGroup, SigningKey};
use teenet_crypto::SecureRng;
use teenet_sgx::cost::Counters;
use teenet_sgx::{
    deploy_platform, EnclaveId, EpidGroup, Report, SgxError, SwitchlessConfig, TeeBackend,
    TeePlatform, TransitionMode, TransitionStats,
};

use crate::compute::{compute_routes, RoutingOutcome};
use crate::controller::{alc_fn, ic_fn, AsLocalController, InterdomainController};
use crate::cost;
use crate::policy::LocalPolicy;
use crate::predicate::Predicate;
use crate::topology::{AsId, Topology};

/// Result alias.
pub type Result<T> = core::result::Result<T, SgxError>;

/// Counters split the way Table 4 reports them.
#[derive(Debug, Clone)]
pub struct SdnReport {
    /// Steady-state counters of the inter-domain controller enclave.
    pub interdomain: Counters,
    /// Steady-state counters per AS-local controller enclave.
    pub aslocal: Vec<Counters>,
    /// Routes installed per AS.
    pub routes_installed: Vec<u32>,
    /// Remote attestations performed during setup.
    pub attestations: u64,
}

impl SdnReport {
    /// Average AS-local counters (the paper reports "the average of 30
    /// controllers").
    pub fn aslocal_avg(&self) -> Counters {
        if self.aslocal.is_empty() {
            return Counters::new();
        }
        let mut sum = Counters::new();
        for c in &self.aslocal {
            sum.merge(*c);
        }
        Counters {
            sgx_instr: sum.sgx_instr / self.aslocal.len() as u64,
            normal_instr: sum.normal_instr / self.aslocal.len() as u64,
        }
    }
}

/// A deployed SGX inter-domain routing system.
pub struct SdnDeployment {
    /// Platform hosting the inter-domain controller.
    pub controller_platform: Box<dyn TeePlatform>,
    /// One platform per AS.
    pub as_platforms: Vec<Box<dyn TeePlatform>>,
    controller_enclave: EnclaveId,
    as_enclaves: Vec<EnclaveId>,
    as_nonces: Vec<Option<[u8; 32]>>,
    /// Attestation accounting (Table 3).
    pub ledger: AttestLedger,
    topology: Topology,
}

impl SdnDeployment {
    /// Builds platforms and loads controller enclaves for `topology` with
    /// the given private `policies`.
    pub fn new(
        topology: &Topology,
        policies: &HashMap<AsId, LocalPolicy>,
        config: AttestConfig,
        seed: u64,
    ) -> Result<Self> {
        Self::with_backend(topology, policies, config, seed, TeeBackend::Sgx)
    }

    /// [`SdnDeployment::new`] on an explicit TEE backend.
    pub fn with_backend(
        topology: &Topology,
        policies: &HashMap<AsId, LocalPolicy>,
        config: AttestConfig,
        seed: u64,
        backend: TeeBackend,
    ) -> Result<Self> {
        let mut rng = SecureRng::seed_from_u64(seed);
        let epid = EpidGroup::new(1, &mut rng)?;
        let author = SigningKey::generate(&SchnorrGroup::small(), &mut rng)?;
        let expected = InterdomainController::expected_measurement(&config);

        let mut controller_platform =
            deploy_platform(backend, "interdomain-controller", &epid, seed)?;
        let controller_enclave = controller_platform.create_signed(
            Box::new(InterdomainController::new(config.clone())),
            &author,
            1,
        )?;

        let mut as_platforms = Vec::with_capacity(topology.len());
        let mut as_enclaves = Vec::with_capacity(topology.len());
        for as_id in topology.ases() {
            let mut platform = deploy_platform(
                backend,
                &format!("as-{}", as_id.0),
                &epid,
                seed + 1 + as_id.0 as u64,
            )?;
            let local_edges: Vec<_> = topology
                .edges()
                .iter()
                .copied()
                .filter(|&(a, b, _)| a == as_id || b == as_id)
                .collect();
            let policy = policies
                .get(&as_id)
                .cloned()
                .unwrap_or_else(|| LocalPolicy::new(as_id));
            let program = AsLocalController::new(
                policy,
                local_edges,
                config.clone(),
                expected,
                epid.public_key(),
            );
            let enclave = platform.create_signed(Box::new(program), &author, 1)?;
            as_platforms.push(platform);
            as_enclaves.push(enclave);
        }

        Ok(SdnDeployment {
            controller_platform,
            as_platforms,
            controller_enclave,
            as_enclaves,
            as_nonces: vec![None; topology.len()],
            ledger: AttestLedger::new(),
            topology: topology.clone(),
        })
    }

    /// Phase 1 (messages 1–4 of Figure 2): every AS-local controller
    /// attests the inter-domain controller and bootstraps its channel.
    pub fn attest_all(&mut self) -> Result<()> {
        let qe_mr = self.controller_platform.attestation_target_info().mrenclave;
        for i in 0..self.as_enclaves.len() {
            // Message 1 from the AS-local enclave (the challenger).
            let request =
                self.as_platforms[i].ecall_nohost(self.as_enclaves[i], alc_fn::CONNECT, &[])?;
            let nonce: [u8; 32] = request[..32].try_into().expect("nonce prefix");
            self.as_nonces[i] = Some(nonce);
            // Messages 2–4 on the controller platform.
            let mut begin_input = request.clone();
            begin_input.extend_from_slice(&qe_mr.0);
            let report_bytes = self.controller_platform.ecall_nohost(
                self.controller_enclave,
                ic_fn::ATTEST_BEGIN,
                &begin_input,
            )?;
            let report = Report::from_bytes(&report_bytes)?;
            let evidence = self.controller_platform.evidence(&report)?;
            let mut finish_input = nonce.to_vec();
            finish_input.extend_from_slice(&evidence.to_bytes());
            let response = self.controller_platform.ecall_nohost(
                self.controller_enclave,
                ic_fn::ATTEST_FINISH,
                &finish_input,
            )?;
            // Message 9 back at the AS.
            self.as_platforms[i].ecall_nohost(self.as_enclaves[i], alc_fn::COMPLETE, &response)?;
            self.ledger.record(
                AttestKind::InterdomainController,
                i as u64,
                u64::MAX, // the one controller
            );
        }
        Ok(())
    }

    /// Excludes setup costs, as the paper's Table 4 does ("we exclude the
    /// cost of enclave initialization and remote attestation").
    pub fn reset_counters(&mut self) -> Result<()> {
        self.controller_platform
            .reset_counters(self.controller_enclave)?;
        for i in 0..self.as_enclaves.len() {
            self.as_platforms[i].reset_counters(self.as_enclaves[i])?;
        }
        Ok(())
    }

    /// Phase 2 (message 5): policies and local topology flow to the
    /// controller through the secure channels.
    pub fn submit_all(&mut self) -> Result<()> {
        for i in 0..self.as_enclaves.len() {
            self.submit_one(i)?;
        }
        Ok(())
    }

    /// Submits AS `i`'s policy alone (one message-4/5 exchange). Returns
    /// the sealed policy blob's wire size; used by the load-calibration
    /// driver to measure a single announcement.
    pub fn submit_one(&mut self, i: usize) -> Result<usize> {
        let sealed =
            self.as_platforms[i].ecall_nohost(self.as_enclaves[i], alc_fn::SUBMIT_POLICY, &[])?;
        let wire = sealed.len();
        let nonce = self.as_nonces[i].expect("attested");
        let mut input = nonce.to_vec();
        input.extend_from_slice(&sealed);
        self.controller_platform
            .ecall_nohost(self.controller_enclave, ic_fn::SUBMIT, &input)?;
        Ok(wire)
    }

    /// Submits the policies of several ASes as **one announcement batch**:
    /// each AS seals its policy locally, then all sealed blobs enter the
    /// controller under a single EENTER/EEXIT pair
    /// ([`teenet_sgx::platform::Platform::ecall_batch`]). Returns each
    /// sealed blob's wire size.
    pub fn submit_batch(&mut self, indices: &[usize]) -> Result<Vec<usize>> {
        let mut calls = Vec::with_capacity(indices.len());
        let mut wires = Vec::with_capacity(indices.len());
        for &i in indices {
            let sealed = self.as_platforms[i].ecall_nohost(
                self.as_enclaves[i],
                alc_fn::SUBMIT_POLICY,
                &[],
            )?;
            wires.push(sealed.len());
            let nonce = self.as_nonces[i].expect("attested");
            let mut input = nonce.to_vec();
            input.extend_from_slice(&sealed);
            calls.push((ic_fn::SUBMIT, input));
        }
        self.controller_platform
            .ecall_batch_nohost(self.controller_enclave, &calls)?;
        Ok(wires)
    }

    /// Sets the transition mode of the controller enclave and every
    /// AS-local enclave, configuring each switchless ring first so the
    /// worker pools initialise from `switchless`.
    pub fn set_transition_mode(
        &mut self,
        mode: TransitionMode,
        switchless: SwitchlessConfig,
    ) -> Result<()> {
        self.controller_platform
            .configure_switchless(self.controller_enclave, switchless)?;
        self.controller_platform
            .set_transition_mode(self.controller_enclave, mode)?;
        for i in 0..self.as_enclaves.len() {
            self.as_platforms[i].configure_switchless(self.as_enclaves[i], switchless)?;
            self.as_platforms[i].set_transition_mode(self.as_enclaves[i], mode)?;
        }
        Ok(())
    }

    /// Combined crossing statistics: controller enclave plus every
    /// AS-local enclave.
    pub fn transition_stats(&self) -> Result<TransitionStats> {
        let mut total = self
            .controller_platform
            .transition_stats_of(self.controller_enclave)?;
        for i in 0..self.as_enclaves.len() {
            total.merge(self.as_platforms[i].transition_stats_of(self.as_enclaves[i])?);
        }
        Ok(total)
    }

    /// Phase 3 (message 6 prep): the controller computes paths for all
    /// ASes inside its enclave.
    pub fn compute(&mut self) -> Result<()> {
        self.controller_platform
            .ecall_nohost(self.controller_enclave, ic_fn::COMPUTE, &[])?;
        Ok(())
    }

    /// Phase 4 (messages 6–7): each AS pulls and installs its routes.
    /// Returns installed route counts.
    pub fn distribute_routes(&mut self) -> Result<Vec<u32>> {
        let mut counts = Vec::with_capacity(self.as_enclaves.len());
        for i in 0..self.as_enclaves.len() {
            counts.push(self.pull_one(i)?.1);
        }
        Ok(counts)
    }

    /// AS `i` pulls and installs its routes alone (messages 6–7 for one
    /// AS). Returns the sealed route blob's wire size and the installed
    /// route count; used by the load-calibration driver.
    pub fn pull_one(&mut self, i: usize) -> Result<(usize, u32)> {
        let nonce = self.as_nonces[i].expect("attested");
        let sealed = self.controller_platform.ecall_nohost(
            self.controller_enclave,
            ic_fn::GET_ROUTES,
            &nonce,
        )?;
        let count_bytes = self.as_platforms[i].ecall_nohost(
            self.as_enclaves[i],
            alc_fn::INSTALL_ROUTES,
            &sealed,
        )?;
        let count = u32::from_le_bytes(count_bytes[..4].try_into().expect("4"));
        Ok((sealed.len(), count))
    }

    /// Messages 8–9: submit a two-party verification predicate on behalf
    /// of AS `i`; returns the status byte
    /// (see [`crate::controller::verify_status`]).
    pub fn verify_predicate(
        &mut self,
        i: usize,
        party_a: AsId,
        party_b: AsId,
        predicate: &Predicate,
    ) -> Result<u8> {
        let mut plain = Vec::new();
        plain.extend_from_slice(&party_a.0.to_le_bytes());
        plain.extend_from_slice(&party_b.0.to_le_bytes());
        plain.extend_from_slice(&predicate.to_bytes());
        let sealed =
            self.as_platforms[i].ecall_nohost(self.as_enclaves[i], alc_fn::MAKE_VERIFY, &plain)?;
        let nonce = self.as_nonces[i].expect("attested");
        let mut input = nonce.to_vec();
        input.extend_from_slice(&sealed);
        let sealed_resp = self.controller_platform.ecall_nohost(
            self.controller_enclave,
            ic_fn::VERIFY,
            &input,
        )?;
        let status = self.as_platforms[i].ecall_nohost(
            self.as_enclaves[i],
            alc_fn::READ_VERIFY,
            &sealed_resp,
        )?;
        Ok(status[0])
    }

    /// Runs the whole Figure 2 flow and reports Table 4-style counters
    /// (setup excluded).
    pub fn run(&mut self) -> Result<SdnReport> {
        self.attest_all()?;
        let attestations = self.ledger.total();
        self.reset_counters()?;
        self.submit_all()?;
        self.compute()?;
        let routes_installed = self.distribute_routes()?;
        let interdomain = self
            .controller_platform
            .counters_of(self.controller_enclave)?;
        let mut aslocal = Vec::with_capacity(self.as_enclaves.len());
        for i in 0..self.as_enclaves.len() {
            aslocal.push(self.as_platforms[i].counters_of(self.as_enclaves[i])?);
        }
        Ok(SdnReport {
            interdomain,
            aslocal,
            routes_installed,
            attestations,
        })
    }

    /// The number of ASes.
    pub fn as_count(&self) -> usize {
        self.topology.len()
    }
}

/// Counters for the native (non-SGX) baseline of Table 4.
#[derive(Debug, Clone)]
pub struct NativeReport {
    /// Inter-domain controller normal instructions.
    pub interdomain: Counters,
    /// Per-AS normal instructions.
    pub aslocal: Vec<Counters>,
    /// The routing outcome (for correctness checks against the enclave
    /// run).
    pub outcome: RoutingOutcome,
}

impl NativeReport {
    /// Average AS-local counters.
    pub fn aslocal_avg(&self) -> Counters {
        if self.aslocal.is_empty() {
            return Counters::new();
        }
        let mut sum = Counters::new();
        for c in &self.aslocal {
            sum.merge(*c);
        }
        Counters {
            sgx_instr: 0,
            normal_instr: sum.normal_instr / self.aslocal.len() as u64,
        }
    }
}

/// Executes the identical routing workload natively ("w/o SGX"): same
/// computation, same per-unit costs, no enclave overheads.
pub fn run_native(topology: &Topology, policies: &HashMap<AsId, LocalPolicy>) -> NativeReport {
    let outcome = compute_routes(topology, policies);
    let mut interdomain = Counters::new();
    interdomain.normal(outcome.work_units * cost::ROUTE_EVAL_COST);
    let mut aslocal = Vec::with_capacity(topology.len());
    for as_id in topology.ases() {
        let mut c = Counters::new();
        c.normal(cost::ASLOCAL_BASE_COST);
        let n_routes = outcome.routes_of(as_id).len() as u64;
        c.normal(n_routes * cost::FIB_INSTALL_COST);
        aslocal.push(c);
    }
    NativeReport {
        interdomain,
        aslocal,
        outcome,
    }
}
