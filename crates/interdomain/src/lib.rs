#![warn(missing_docs)]

//! # teenet-interdomain
//!
//! SGX-enabled software-defined inter-domain routing — the first case
//! study (§3.1) of the HotNets '15 TEE-networking paper and its entire
//! evaluation workload (Tables 3–4, Figures 2–3).
//!
//! * [`topology`] — AS graphs with customer/provider/peer relationships
//!   and the random three-tier generator the evaluation uses.
//! * [`policy`] — private per-AS policies: local preference (with
//!   promise-style overrides) and Gao–Rexford export rules.
//! * [`compute`] — the centralized BGP path computation the inter-domain
//!   controller runs inside its enclave, with work-unit accounting.
//! * [`refbgp`] — an independent *distributed* BGP simulator used as a
//!   differential oracle (the paper validated against GNS3).
//! * [`predicate`] / [`verify`] — the two-party policy-verification
//!   module (SPIDeR-style promises checked inside the enclave).
//! * [`controller`] — the inter-domain and AS-local controller enclave
//!   programs; [`deployment`] — the full multi-platform deployment driver
//!   plus the native baseline.

pub mod compute;
pub mod controller;
pub mod cost;
pub mod deployment;
pub mod driver;
pub mod policy;
pub mod predicate;
pub mod refbgp;
pub mod route;
pub mod topology;
pub mod verify;
pub mod wire;

pub use compute::{compute_routes, default_policies, RoutingOutcome};
pub use controller::{AsLocalController, InterdomainController};
pub use deployment::{run_native, NativeReport, SdnDeployment, SdnReport};
pub use driver::BgpService;
pub use policy::LocalPolicy;
pub use predicate::Predicate;
pub use route::Route;
pub use topology::{AsId, EdgeKind, Relationship, Topology};
pub use verify::{VerificationModule, VerifyError, VerifyStatus};
