//! Centralised BGP path computation — what the inter-domain controller
//! runs inside its enclave.
//!
//! "The inter-domain controller then computes paths for all ASes and sends
//! routes for each AS" (paper §3.1) "using the rules of BGP" (§5). The
//! algorithm is a faithful per-destination BGP fixpoint: each AS selects
//! among the routes its neighbors currently announce (adj-RIB-in),
//! announcements respect the announcing AS's Gao–Rexford export policy,
//! preferences come from the receiving AS's private policy, and loops are
//! rejected at the receiver. Withdrawals (an AS's best route changing)
//! propagate until quiescence.
//!
//! The computation counts *work units* (route evaluations and announcement
//! processings) that the cost model converts into modelled instructions for
//! Table 4 / Figure 3.

use std::collections::{HashMap, VecDeque};

use crate::policy::LocalPolicy;
use crate::route::Route;
use crate::topology::{AsId, Relationship, Topology};

/// Result of a full path computation.
#[derive(Debug, Clone)]
pub struct RoutingOutcome {
    /// Selected best route per (source, destination). Absent if the
    /// destination is unreachable under policy.
    pub best: HashMap<(AsId, AsId), Route>,
    /// Every route each AS received, per destination (adj-RIB-in) — the
    /// evidence base for predicate verification (§3.1's SPIDeR-style
    /// promises are checked "over all routes that A receives").
    pub rib_in: HashMap<AsId, HashMap<AsId, Vec<Route>>>,
    /// Candidate evaluations + announcements processed (cost-model input).
    pub work_units: u64,
}

impl RoutingOutcome {
    /// The selected route from `src` to `dst`, if any.
    pub fn route(&self, src: AsId, dst: AsId) -> Option<&Route> {
        self.best.get(&(src, dst))
    }

    /// All selected routes of one AS (what the controller sends back to
    /// that AS-local controller).
    pub fn routes_of(&self, src: AsId) -> Vec<&Route> {
        let mut routes: Vec<&Route> = self
            .best
            .iter()
            .filter(|((s, _), _)| *s == src)
            .map(|(_, r)| r)
            .collect();
        routes.sort_by_key(|r| r.dst);
        routes
    }
}

fn invert(rel: Relationship) -> Relationship {
    match rel {
        Relationship::Customer => Relationship::Provider,
        Relationship::Provider => Relationship::Customer,
        Relationship::Peer => Relationship::Peer,
    }
}

/// Computes best routes for every (source, destination) pair.
///
/// `policies` must contain an entry per AS (use [`LocalPolicy::new`] for
/// default Gao–Rexford behaviour).
///
/// ```
/// use teenet_interdomain::{compute_routes, default_policies, Topology, AsId};
/// use teenet_crypto::SecureRng;
/// let topo = Topology::random(10, &mut SecureRng::seed_from_u64(1));
/// let outcome = compute_routes(&topo, &default_policies(&topo));
/// assert!(outcome.route(AsId(3), AsId(0)).is_some());
/// ```
pub fn compute_routes(
    topology: &Topology,
    policies: &HashMap<AsId, LocalPolicy>,
) -> RoutingOutcome {
    let mut outcome = RoutingOutcome {
        best: HashMap::new(),
        rib_in: HashMap::new(),
        work_units: 0,
    };
    // Adjacency cached once: (neighbor, neighbor's relationship to the AS).
    let adj: HashMap<AsId, Vec<(AsId, Relationship)>> = topology
        .ases()
        .map(|a| (a, topology.neighbors(a)))
        .collect();

    for dst in topology.ases() {
        per_destination(dst, &adj, policies, &mut outcome);
    }
    outcome
}

// teenet-analyze: allow-block(enclave-abort, enclave-index) -- adj is built from the topology itself in compute_routes, so every queued AS has adjacency, policy and rib entries by construction; a missing entry is a local logic bug, not reachable from wire input
fn per_destination(
    dst: AsId,
    adj: &HashMap<AsId, Vec<(AsId, Relationship)>>,
    policies: &HashMap<AsId, LocalPolicy>,
    outcome: &mut RoutingOutcome,
) {
    // rib[as][announcer] = the route the announcer currently advertises.
    let mut rib: HashMap<AsId, HashMap<AsId, Route>> = HashMap::new();
    let mut best: HashMap<AsId, Route> = HashMap::new();
    best.insert(dst, Route::origin(dst));

    let mut queue: VecDeque<AsId> = VecDeque::new();
    queue.push_back(dst);
    // Safety valve against policy dispute wheels (cannot occur under pure
    // Gao–Rexford, but overrides are arbitrary).
    let mut budget: u64 = (adj.len() as u64 + 1).pow(3) * 16;

    while let Some(a) = queue.pop_front() {
        if budget == 0 {
            debug_assert!(false, "BGP fixpoint budget exhausted (dispute wheel?)");
            break;
        }
        budget -= 1;

        let a_policy = &policies[&a];
        let a_best = best.get(&a).cloned();
        // Relationship of a's current best's next hop, for export rules.
        let learned_from = a_best.as_ref().and_then(|r| {
            r.next_hop().map(|nh| {
                adj[&a]
                    .iter()
                    .find(|&&(n, _)| n == nh)
                    .expect("next hop is neighbor")
                    .1
            })
        });

        for &(nbr, nbr_rel) in &adj[&a] {
            outcome.work_units += 1; // announcement processing
            if nbr == dst {
                continue; // the origin never needs a route to itself
            }
            // What does a announce to nbr?
            let announcement: Option<Route> = match &a_best {
                Some(r) if a_policy.may_export(learned_from, nbr, nbr_rel) => {
                    let mut path = Vec::with_capacity(r.path.len() + 1);
                    path.push(a);
                    path.extend_from_slice(&r.path);
                    // Receiver-side loop rejection.
                    if path.contains(&nbr) {
                        None
                    } else {
                        Some(Route {
                            dst,
                            path,
                            local_pref: 0, // receiver assigns
                        })
                    }
                }
                _ => None,
            };

            let nbr_rib = rib.entry(nbr).or_default();
            let changed = match &announcement {
                Some(r) => nbr_rib
                    .get(&a)
                    .map(|old| old.path != r.path)
                    .unwrap_or(true),
                None => nbr_rib.remove(&a).is_some(),
            };
            if let Some(mut r) = announcement {
                // Preference assigned by the *receiving* AS's policy based
                // on the announcer's relationship to it.
                let a_rel_to_nbr = invert(nbr_rel);
                r.local_pref = policies[&nbr].pref_for(a, a_rel_to_nbr);
                if changed {
                    nbr_rib.insert(a, r);
                }
            }
            if !changed {
                continue;
            }
            // Re-run the decision process at nbr.
            let mut new_best: Option<Route> = None;
            for candidate in rib[&nbr].values() {
                outcome.work_units += 1; // route evaluation
                match &new_best {
                    None => new_best = Some(candidate.clone()),
                    Some(cur) => {
                        if candidate.better_than(cur) {
                            new_best = Some(candidate.clone());
                        }
                    }
                }
            }
            let old_best = best.get(&nbr);
            if new_best.as_ref() != old_best {
                match new_best {
                    Some(r) => {
                        best.insert(nbr, r);
                    }
                    None => {
                        best.remove(&nbr);
                    }
                }
                queue.push_back(nbr);
            }
        }
    }

    for (a, route) in best {
        if a != dst {
            outcome.best.insert((a, dst), route);
        }
        // Record adj-RIB-in for the verification module.
        if let Some(received) = rib.get(&a) {
            let mut routes: Vec<Route> = received.values().cloned().collect();
            routes.sort_by_key(|r| r.next_hop());
            outcome.rib_in.entry(a).or_default().insert(dst, routes);
        }
    }
}

/// Policies with Gao–Rexford defaults for every AS in a topology.
pub fn default_policies(topology: &Topology) -> HashMap<AsId, LocalPolicy> {
    topology.ases().map(|a| (a, LocalPolicy::new(a))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::EdgeKind;
    use teenet_crypto::SecureRng;

    fn diamond() -> (Topology, HashMap<AsId, LocalPolicy>) {
        // 0 ↔ 1 peers; both providers of 2; 2 provider of 3.
        let t = Topology::from_edges(
            4,
            vec![
                (AsId(0), AsId(1), EdgeKind::Peering),
                (AsId(0), AsId(2), EdgeKind::TransitTo),
                (AsId(1), AsId(2), EdgeKind::TransitTo),
                (AsId(2), AsId(3), EdgeKind::TransitTo),
            ],
        );
        let p = default_policies(&t);
        (t, p)
    }

    #[test]
    fn everyone_reaches_everyone_in_diamond() {
        let (t, p) = diamond();
        let out = compute_routes(&t, &p);
        for src in t.ases() {
            for dst in t.ases() {
                if src != dst {
                    assert!(out.route(src, dst).is_some(), "{src} cannot reach {dst}");
                }
            }
        }
    }

    #[test]
    fn paths_terminate_at_destination() {
        let (t, p) = diamond();
        let out = compute_routes(&t, &p);
        for ((_, dst), route) in &out.best {
            assert_eq!(route.path.last(), Some(dst));
            assert_eq!(route.dst, *dst);
        }
    }

    #[test]
    fn customer_route_preferred_over_peer() {
        // AS0 reaches AS3 via its customer 2 (path 2,3), never via peer 1.
        let (t, p) = diamond();
        let out = compute_routes(&t, &p);
        let r = out.route(AsId(0), AsId(3)).unwrap();
        assert_eq!(r.next_hop(), Some(AsId(2)));
    }

    #[test]
    fn valley_free_property() {
        // Gao–Rexford: no path goes down (to a customer) and then up (to a
        // provider) or across a peer after going down. Check all paths on a
        // random topology are valley-free.
        let mut rng = SecureRng::seed_from_u64(11);
        let t = Topology::random(30, &mut rng);
        let p = default_policies(&t);
        let out = compute_routes(&t, &p);
        for ((src, _), route) in &out.best {
            // Walk the path as relationship transitions seen by traffic:
            // each hop edge is provider→customer (down), customer→provider
            // (up), or peer. After a down or peer move, only down moves
            // are allowed.
            let mut nodes = vec![*src];
            nodes.extend_from_slice(&route.path);
            let mut descended = false;
            for w in nodes.windows(2) {
                let rel = t.relationship(w[0], w[1]).expect("adjacent");
                match rel {
                    // w[1] is w[0]'s provider → traffic goes up.
                    Relationship::Provider => {
                        assert!(!descended, "valley in path {nodes:?}");
                    }
                    Relationship::Peer => {
                        assert!(!descended, "peer after descent in {nodes:?}");
                        descended = true;
                    }
                    Relationship::Customer => {
                        descended = true;
                    }
                }
            }
        }
    }

    #[test]
    fn no_loops_in_any_path() {
        let mut rng = SecureRng::seed_from_u64(5);
        let t = Topology::random(40, &mut rng);
        let p = default_policies(&t);
        let out = compute_routes(&t, &p);
        for ((src, _), route) in &out.best {
            let mut seen = vec![*src];
            for hop in &route.path {
                assert!(!seen.contains(hop), "loop: {src} {:?}", route.path);
                seen.push(*hop);
            }
        }
    }

    #[test]
    fn pref_override_changes_selection() {
        // AS2 has two providers (0 and 1). By default the tie-break picks
        // provider 0; an override preferring 1 flips it.
        let (t, mut p) = diamond();
        let base = compute_routes(&t, &p);
        // AS2 → AS1's prefix could go direct; check 2 → 0's prefix though
        // provider choice only matters for multi-hop. Use dst = 1:
        assert_eq!(
            base.route(AsId(2), AsId(1)).unwrap().next_hop(),
            Some(AsId(1))
        );
        // For dst=0 also direct. The interesting case: dst reachable via
        // both providers at equal pref — AS3 to AS0 vs AS1 is via 2 anyway.
        // Instead check AS2's route to a tier-1 it is NOT connected to via
        // an override: prefer provider 1 for everything.
        p.get_mut(&AsId(2))
            .unwrap()
            .pref_override
            .insert(AsId(0), 10);
        let out = compute_routes(&t, &p);
        // Now provider 0's announcements have pref 10 < provider 1's 100.
        assert_eq!(
            out.route(AsId(2), AsId(0)).unwrap().next_hop(),
            Some(AsId(1)),
            "downgraded provider 0 means reaching AS0 via AS1"
        );
    }

    #[test]
    fn never_export_filter_respected() {
        // If AS2 never exports to AS3, AS3 loses all transit.
        let (t, mut p) = diamond();
        p.get_mut(&AsId(2)).unwrap().never_export_to.push(AsId(3));
        let out = compute_routes(&t, &p);
        assert!(out.route(AsId(3), AsId(0)).is_none());
        assert!(out.route(AsId(3), AsId(1)).is_none());
        // AS3's own announcements still travel up (3 exports to its
        // provider), so others still reach 3.
        assert!(out.route(AsId(0), AsId(3)).is_some());
    }

    #[test]
    fn rib_in_collected() {
        let (t, p) = diamond();
        let out = compute_routes(&t, &p);
        // AS2 hears about AS0's prefix from AS0 directly (customer link)
        // and possibly from AS1.
        let rib = &out.rib_in[&AsId(2)][&AsId(0)];
        assert!(!rib.is_empty());
        assert!(rib.iter().any(|r| r.next_hop() == Some(AsId(0))));
    }

    #[test]
    fn work_units_grow_with_topology() {
        let mut rng = SecureRng::seed_from_u64(9);
        let small = Topology::random(10, &mut rng);
        let large = Topology::random(30, &mut rng);
        let ws = compute_routes(&small, &default_policies(&small)).work_units;
        let wl = compute_routes(&large, &default_policies(&large)).work_units;
        assert!(wl > ws * 2, "small={ws} large={wl}");
    }

    #[test]
    fn deterministic_output() {
        let mut rng = SecureRng::seed_from_u64(13);
        let t = Topology::random(25, &mut rng);
        let p = default_policies(&t);
        let a = compute_routes(&t, &p);
        let b = compute_routes(&t, &p);
        assert_eq!(a.best, b.best);
        assert_eq!(a.work_units, b.work_units);
    }
}
